//! One experiment: a routine, a core under test, a scenario, and the
//! machinery to run it fault-free or with one armed fault.

use std::sync::Arc;

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_mem::CacheConfig;
use sbst_fault::{FaultPlane, FaultSite, Verdict};
use sbst_isa::AsmError;
use sbst_mem::{FlashImage, SRAM_BASE};
use sbst_soc::{RunOutcome, Scenario, Soc, SocBuilder};
use sbst_stl::routines::GenericAluTest;
use sbst_stl::{
    wrap_cached, wrap_sequence, RoutineEnv, SelfTestRoutine, WrapConfig, WrapError,
    RESULT_SIG_OFF, RESULT_STATUS_OFF, STATUS_DONE, Terminator,
};

/// Builds the (core-kind specific) routine each core of the SoC runs.
pub type RoutineFactory<'a> = dyn Fn(CoreKind) -> Box<dyn SelfTestRoutine> + Sync + 'a;

/// Execution style of the core under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStyle {
    /// Legacy execution: single pass, no cache management, caches off.
    LegacyUncached,
    /// The paper's cache-based wrapper on cached cores.
    CacheWrapped,
}

/// Full experiment configuration (the expanded form of
/// [`Experiment::assemble`]'s parameters).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Core under test.
    pub kind: CoreKind,
    /// Execution style.
    pub style: ExecStyle,
    /// Scenario (active cores, code position, alignment, phase seed).
    pub scenario: Scenario,
    /// Wrapper loop iterations (2 = the paper's loading + execution).
    pub iterations: u32,
    /// Whether the wrapper invalidates the caches first.
    pub invalidate: bool,
    /// Instruction-cache geometry of the core under test (when cached).
    pub icache: CacheConfig,
    /// Data-cache geometry of the core under test (when cached).
    pub dcache: CacheConfig,
}

impl ExperimentConfig {
    /// The standard configuration for a style (paper cache geometry).
    pub fn new(kind: CoreKind, style: ExecStyle, scenario: Scenario) -> ExperimentConfig {
        let (iterations, invalidate) = match style {
            ExecStyle::CacheWrapped => (2, true),
            ExecStyle::LegacyUncached => (1, false),
        };
        ExperimentConfig {
            kind,
            style,
            scenario,
            iterations,
            invalidate,
            icache: CacheConfig::icache_8k(),
            dcache: CacheConfig::dcache_4k(),
        }
    }
}

/// Observables of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// SoC outcome.
    pub outcome: RunOutcome,
    /// Signature from the core under test's mailbox.
    pub signature: u32,
    /// Status word from the mailbox.
    pub status: u32,
    /// Total SoC cycles.
    pub cycles: u64,
    /// Stall counters of the core under test (IF, MEM).
    pub if_stalls: u64,
    /// Memory-stage stall cycles.
    pub mem_stalls: u64,
}

/// A golden-prefix snapshot of one experiment's SoC — the campaign
/// fast path.
///
/// Captured once per experiment at the last cycle *before* the core
/// under test issues its first instruction. Faults are armed only on
/// that core, and the fault plane is consulted exclusively by its
/// issue/execute/ICU logic (fetch and LSU never see it), so up to the
/// snapshot point a faulty run and the golden run are cycle-identical:
/// grading a fault can clone this state, arm the plane, and simulate
/// only the tail instead of re-booting the whole SoC from cycle 0.
/// The one unit active before first issue is the ICU (its tick runs
/// every cycle); verdict equivalence over full collapsed fault lists —
/// ICU faults included — is asserted by the warm-start test suite.
#[derive(Debug, Clone)]
pub struct Snapshot {
    soc: Soc,
    /// Absolute cycle budget of a warm run: the *same* golden-calibrated
    /// cutoff (`golden×4 + 20_000`) the cold path passes to `Soc::run`,
    /// so the halted-by-the-deadline decision — and with it the hang
    /// verdict — is bit-identical between the two paths. A tighter
    /// budget (1.5× the golden tail) was tried and rejected: the
    /// equivalence suite found faults that *finish* at 2.4–2.8× golden
    /// (e.g. a stuck EPC bit re-executing code after every trap), which
    /// such a budget misclassifies as hangs. The fast path's win comes
    /// from skipping the prefix and from the early core-under-test halt
    /// exit, not from cutting hangs short.
    budget: u64,
}

impl Snapshot {
    /// Cycle at which the snapshot was captured (the fault-free prefix
    /// every warm run skips).
    pub fn cycle(&self) -> u64 {
        self.soc.cycle()
    }

    /// The warm run's absolute cycle budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The captured SoC state itself (read-only). Custom grading engines
    /// clone it to start a tail simulation; with the copy-on-write
    /// backing stores in `sbst-mem` that clone is cheap.
    pub fn soc(&self) -> &Soc {
        &self.soc
    }
}

/// A fully configured experiment, cheap to re-run with different armed
/// faults (the Flash image is shared, never copied).
pub struct Experiment {
    builder: SocBuilder,
    image: Arc<FlashImage>,
    env_cut: RoutineEnv,
    /// Result mailboxes of the core under test (several when the routine
    /// was split into cache-sized parts, paper §III.2.2).
    cut_mailboxes: Vec<u32>,
    watchdog: u64,
    /// Fingerprint of the [`ExperimentConfig`] this experiment was
    /// assembled from (see
    /// [`fingerprint_config`](crate::fingerprint_config)) — binds
    /// checkpoints to the exact SoC configuration that graded them.
    config_fp: u64,
}

/// Result-mailbox base of core `i` in campaign runs.
fn mailbox(i: usize) -> u32 {
    SRAM_BASE + 0x40 + 0x100 * i as u32
}

/// Scratch-data base of core `i` in campaign runs.
fn scratch(i: usize) -> u32 {
    SRAM_BASE + 0x4000 + 0x800 * i as u32
}

impl Experiment {
    /// Assembles the experiment: the core under test (`kind`) runs at
    /// index 0, the remaining active cores (other kinds, in order) run
    /// the same routine in parallel — the paper's "executed in parallel
    /// by the other cores".
    ///
    /// # Errors
    ///
    /// Propagates wrapper/assembly errors.
    pub fn assemble(
        factory: &RoutineFactory<'_>,
        kind: CoreKind,
        style: ExecStyle,
        scenario: &Scenario,
    ) -> Result<Experiment, WrapError> {
        Experiment::assemble_config(factory, &ExperimentConfig::new(kind, style, *scenario))
    }

    /// Like [`assemble`](Experiment::assemble) but with explicit wrapper
    /// loop-count and invalidation settings (the ablation studies).
    pub fn assemble_with_wrap(
        factory: &RoutineFactory<'_>,
        kind: CoreKind,
        style: ExecStyle,
        scenario: &Scenario,
        iterations: u32,
        invalidate: bool,
    ) -> Result<Experiment, WrapError> {
        let cfg = ExperimentConfig {
            iterations,
            invalidate,
            ..ExperimentConfig::new(kind, style, *scenario)
        };
        Experiment::assemble_config(factory, &cfg)
    }

    /// The fully explicit constructor (cache-geometry studies).
    ///
    /// # Errors
    ///
    /// Propagates wrapper/assembly errors.
    pub fn assemble_config(
        factory: &RoutineFactory<'_>,
        config: &ExperimentConfig,
    ) -> Result<Experiment, WrapError> {
        let ExperimentConfig { kind, style, ref scenario, iterations, invalidate, .. } =
            *config;
        let cached = style == ExecStyle::CacheWrapped;
        let wrap = WrapConfig {
            iterations,
            invalidate,
            icache_capacity: if cached { config.icache.size_bytes } else { u32::MAX },
            ..WrapConfig::default()
        };
        // Core kinds: the CUT first, then the others.
        let mut kinds = vec![kind];
        kinds.extend(CoreKind::ALL.iter().copied().filter(|&k| k != kind));
        kinds.truncate(scenario.active_cores.max(1));

        let delays = scenario.start_delays();
        let mut builder = SocBuilder::new();
        let mut env_cut = None;
        let mut cut_parts = 1usize;
        for (i, &k) in kinds.iter().enumerate() {
            let env = RoutineEnv {
                result_addr: mailbox(i),
                data_base: scratch(i),
                ..RoutineEnv::for_core(k)
            };
            if i == 0 {
                env_cut = Some(env);
            }
            let routine = factory(k);
            let wrap = WrapConfig { terminator: Terminator::Halt, ..wrap };
            let asm = if i == 0 {
                match wrap_cached(routine.as_ref(), &env, &wrap, &format!("c{i}")) {
                    Ok(asm) => asm,
                    Err(WrapError::TooLarge { .. }) => {
                        // Split into cache-sized parts run back to back,
                        // each with its own loading/execution loop and
                        // mailbox (paper §III.2.2).
                        let mut parts_asm = None;
                        for parts in 2..=8usize {
                            let Some(split) = routine.split(parts) else { break };
                            let refs: Vec<&dyn SelfTestRoutine> =
                                split.iter().map(|p| p.as_ref()).collect();
                            let seq = wrap_sequence(&refs, &env, &wrap, &format!("c{i}"));
                            if seq.assemble(0).map_err(WrapError::Asm)?.len_bytes()
                                / split.len()
                                <= wrap.icache_capacity as usize
                            {
                                // Each part individually fits (the
                                // sequence as a whole need not).
                                let fits = split.iter().enumerate().all(|(pi, p)| {
                                    let part_env = RoutineEnv {
                                        result_addr: env.result_addr + 16 * pi as u32,
                                        data_base: env.data_base + 0x40 * pi as u32,
                                        ..env
                                    };
                                    wrap_cached(p.as_ref(), &part_env, &wrap, "probe")
                                        .is_ok()
                                });
                                if fits {
                                    parts_asm = Some((seq, split.len()));
                                    break;
                                }
                            }
                        }
                        let (seq, nparts) = parts_asm.ok_or(WrapError::TooLarge {
                            image_bytes: 0,
                            capacity: wrap.icache_capacity,
                        })?;
                        cut_parts = nparts;
                        seq
                    }
                    Err(e) => return Err(e),
                }
            } else {
                // The other cores run their share of the STL: the same
                // routine plus generic boot-time tests whose length and
                // position in the sequence depend on the scenario — the
                // paper's varying "initial SoC configuration", which is
                // what makes the contention phase (and thus the graded
                // coverage) fluctuate between logic simulations.
                let filler = GenericAluTest::new(
                    3 + ((scenario.skew_seed as u32) * 7 + i as u32 * 5) % 11,
                );
                let seq: Vec<&dyn SelfTestRoutine> =
                    if (scenario.skew_seed as usize + i).is_multiple_of(2) {
                        vec![routine.as_ref(), &filler]
                    } else {
                        vec![&filler, routine.as_ref()]
                    };
                let wrap = WrapConfig { icache_capacity: u32::MAX, ..wrap };
                wrap_sequence(&seq, &env, &wrap, &format!("c{i}"))
            };
            let base = scenario.code_base(i);
            let program = asm.assemble(base).map_err(AsmError::into_wrap)?;
            builder = builder.load(&program);
            // The execution style only applies to the core under test;
            // the other cores run like the application normally does —
            // caches on — which makes their bus pressure *bursty*
            // (cold-miss phases, then write-through drains): the
            // intermittent contention behind the paper's coverage
            // oscillation.
            let cfg = if i == 0 && cached {
                CoreConfig {
                    icache: Some(config.icache),
                    dcache: Some(config.dcache),
                    ..CoreConfig::cached(k, i, base)
                }
            } else if i > 0 {
                CoreConfig::cached(k, i, base)
            } else {
                CoreConfig::uncached(k, i, base)
            };
            builder = builder.core(cfg, delays[i.min(2)]);
        }
        let image = builder.freeze_image();
        let env_cut = env_cut.expect("at least one core");
        let cut_mailboxes =
            (0..cut_parts).map(|i| env_cut.result_addr + 16 * i as u32).collect();
        let mut exp = Experiment {
            builder,
            image,
            env_cut,
            cut_mailboxes,
            watchdog: 50_000_000,
            config_fp: crate::checkpoint::fingerprint_config(config),
        };
        // Calibrate the watchdog from the golden run.
        let golden = exp.run(FaultPlane::fault_free());
        assert!(
            golden.outcome.is_clean(),
            "golden run must halt cleanly, got {:?}",
            golden.outcome
        );
        exp.watchdog = golden.cycles * 4 + 20_000;
        Ok(exp)
    }

    /// The core under test's routine environment.
    pub fn env(&self) -> RoutineEnv {
        self.env_cut
    }

    /// Fingerprint of the configuration this experiment was assembled
    /// from — what checkpoints of its campaigns are bound to.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fp
    }

    /// Runs the experiment once with `plane` armed on the core under
    /// test.
    ///
    /// When the routine was split, the reported signature is the XOR of
    /// the parts' signatures and the status is `STATUS_DONE` only if
    /// every part finished (a fault in any part perturbs the combined
    /// observation exactly as it would the single one).
    pub fn run(&self, plane: FaultPlane) -> Observation {
        let mut soc = self.builder.build_shared(Arc::clone(&self.image));
        soc.core_mut(0).set_plane(plane);
        let outcome = soc.run(self.watchdog);
        self.observe(&soc, outcome)
    }

    /// The core under test's result-mailbox bases (one per split part).
    pub(crate) fn mailboxes(&self) -> &[u32] {
        &self.cut_mailboxes
    }

    /// Reads the core under test's mailboxes and counters off a stopped
    /// SoC.
    pub(crate) fn observe(&self, soc: &Soc, outcome: RunOutcome) -> Observation {
        let c = soc.core(0).counters();
        let mut signature = 0u32;
        let mut status = STATUS_DONE;
        for (i, &mailbox) in self.cut_mailboxes.iter().enumerate() {
            signature ^= soc.peek(mailbox + RESULT_SIG_OFF as u32).rotate_left(i as u32);
            let s = soc.peek(mailbox + RESULT_STATUS_OFF as u32);
            if s != STATUS_DONE {
                status = s;
            }
        }
        Observation {
            outcome,
            signature,
            status,
            cycles: soc.cycle(),
            if_stalls: c.if_stalls,
            mem_stalls: c.mem_stalls,
        }
    }

    /// Captures the warm-start [`Snapshot`]: the SoC state immediately
    /// before the step in which the core under test issues its first
    /// instruction (issue precedes fetch within a step, so this is the
    /// last state no instruction of that core has influenced).
    ///
    /// # Panics
    ///
    /// Panics if the core under test never issues within the golden
    /// cycle count — that would mean the golden run itself was broken.
    pub fn snapshot(&self, golden: &Observation) -> Snapshot {
        let mut soc = self.builder.build_shared(Arc::clone(&self.image));
        let mut prev = soc.clone();
        while soc.core(0).instructions_issued() == 0 {
            prev = soc.clone();
            soc.step();
            assert!(
                soc.cycle() <= golden.cycles,
                "core under test never issued within the golden run"
            );
        }
        Snapshot { budget: self.watchdog, soc: prev }
    }

    /// Runs one fault from `snapshot` instead of from reset: clones the
    /// snapshot, arms `plane` on the core under test and simulates only
    /// the tail, stopping as soon as the verdict is decided —
    ///
    /// - any fatal trap decides [`Verdict::UnexpectedTrap`];
    /// - the core under test halting decides the signature/status
    ///   comparison: halting requires a drained pipeline and quiescent
    ///   LSU, so its mailbox writes have reached SRAM, and the other
    ///   cores are fault-free and deterministic — they always halt
    ///   cleanly exactly as in the golden run, so waiting for them
    ///   cannot change the classification;
    /// - the golden-calibrated [`Snapshot::budget`] expiring (or the
    ///   software watchdog biting) decides [`Verdict::Hang`].
    pub fn run_warm(&self, snapshot: &Snapshot, plane: FaultPlane) -> Observation {
        let mut soc = snapshot.soc.clone();
        soc.core_mut(0).set_plane(plane);
        let outcome = loop {
            if soc.cycle() >= snapshot.budget {
                break RunOutcome::Watchdog { cycles: soc.cycle() };
            }
            soc.step();
            if let Some(core) =
                (0..soc.core_count()).find(|&i| soc.core(i).fatal_trap())
            {
                break RunOutcome::FatalTrap { core, cycles: soc.cycle() };
            }
            if soc.core(0).halted() {
                break RunOutcome::AllHalted { cycles: soc.cycle() };
            }
            if soc.bus().watchdog().bitten() {
                break RunOutcome::Watchdog { cycles: soc.cycle() };
            }
        };
        self.observe(&soc, outcome)
    }

    /// Runs fault-free (the golden reference of this scenario).
    pub fn golden(&self) -> Observation {
        self.run(FaultPlane::fault_free())
    }

    /// Classifies a faulty observation against the golden one.
    ///
    /// In-field detection order: a hung core is caught by the watchdog,
    /// an unexpected trap by the (absent) handler, then the signature
    /// comparison, then the routine's own status word.
    pub fn classify(golden: &Observation, faulty: &Observation) -> Verdict {
        match faulty.outcome {
            RunOutcome::Watchdog { .. } => Verdict::Hang,
            RunOutcome::FatalTrap { .. } => Verdict::UnexpectedTrap,
            RunOutcome::AllHalted { .. } => {
                if faulty.signature != golden.signature {
                    Verdict::WrongSignature
                } else if faulty.status != golden.status {
                    Verdict::TestFail
                } else {
                    Verdict::Undetected
                }
            }
        }
    }

    /// Convenience: run one fault and classify it.
    pub fn test_fault(&self, golden: &Observation, site: FaultSite) -> Verdict {
        let faulty = self.run(FaultPlane::armed(site));
        Experiment::classify(golden, &faulty)
    }

    /// Convenience: grade one fault through the warm-start fast path.
    pub fn test_fault_warm(
        &self,
        golden: &Observation,
        snapshot: &Snapshot,
        site: FaultSite,
    ) -> Verdict {
        let faulty = self.run_warm(snapshot, FaultPlane::armed(site));
        Experiment::classify(golden, &faulty)
    }
}

/// Extension: convert assembly errors into wrap errors (they can only
/// arise from label bugs in generated code).
trait IntoWrap {
    fn into_wrap(self) -> WrapError;
}

impl IntoWrap for AsmError {
    fn into_wrap(self) -> WrapError {
        WrapError::Asm(self)
    }
}
