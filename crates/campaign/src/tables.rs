//! Regeneration of the paper's Tables I–IV.

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_fault::Unit;
use sbst_soc::{Scenario, SocBuilder};
use sbst_stl::routines::{BranchTest, GenericAluTest, IcuTest, LsuTest, RegFileTest};
use sbst_stl::sched::{build_stl_program, CoreStl, SchedLayout};
use sbst_stl::{wrap_tcm, RoutineEnv, WrapConfig};

use crate::experiment::{Experiment, ExecStyle};
use crate::faultsim::run_campaign_collapsed;
use crate::routines_for;

/// How much work to spend on a sweep (tests use tiny presets, the
/// benches larger ones; `full()` grades every fault).
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Grade at most this many faults per fault list (evenly sampled).
    pub max_faults: usize,
    /// Number of sweep scenarios (subsampled from the full cross
    /// product) for the min–max columns.
    pub sweep_scenarios: usize,
    /// Phase-skew seeds per configuration (Table I averaging, sweep).
    pub seeds: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl Effort {
    /// Quick preset (CI tests).
    pub fn quick() -> Effort {
        Effort { max_faults: 150, sweep_scenarios: 4, seeds: 2, threads: 0 }
    }

    /// Benchmark preset.
    pub fn standard() -> Effort {
        Effort { max_faults: 800, sweep_scenarios: 9, seeds: 3, threads: 0 }
    }

    /// Grade everything (the paper's setting; slow).
    pub fn full() -> Effort {
        Effort { max_faults: usize::MAX, sweep_scenarios: 18, seeds: 5, threads: 0 }
    }

    /// Even sampling of `list` respecting the budget.
    ///
    /// The stride is forced odd: fault lists enumerate the two
    /// polarities of each pin adjacently, so an even stride would grade
    /// only stuck-at-0 faults.
    pub fn sample(&self, list: &sbst_fault::FaultList) -> sbst_fault::FaultList {
        let stride = list.len().div_ceil(self.max_faults.max(1)).max(1);
        let stride = if stride > 1 && stride.is_multiple_of(2) { stride + 1 } else { stride };
        list.sample(stride)
    }
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// One row of Table I: stall cycles vs number of active cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Active cores.
    pub active_cores: usize,
    /// Fetch-stall cycles (sum over active cores, averaged over seeds).
    pub if_stalls: u64,
    /// Memory-stage stall cycles.
    pub mem_stalls: u64,
}

/// Reproduces Table I: the full STL (ICU/HDCU programs excluded, as in
/// the paper) executed in parallel on 1/2/3 cores through the
/// decentralized scheduler, stalls measured per core and summed.
pub fn table1(effort: &Effort) -> Vec<Table1Row> {
    let layout = SchedLayout::default();
    let wrap = WrapConfig {
        iterations: 1,
        invalidate: false,
        icache_capacity: u32::MAX,
        ..WrapConfig::default()
    };
    let mut rows = Vec::new();
    for active in 1..=3usize {
        let (mut if_sum, mut mem_sum) = (0u64, 0u64);
        for seed in 0..effort.seeds.max(1) {
            let scenario = Scenario {
                active_cores: active,
                skew_seed: seed,
                ..Scenario::single_core()
            };
            let delays = scenario.start_delays();
            let mut builder = SocBuilder::new();
            #[allow(clippy::needless_range_loop)] // `core` indexes three arrays
            for core in 0..active {
                let kind = CoreKind::ALL[core];
                let env = RoutineEnv {
                    result_addr: sbst_mem::SRAM_BASE + 0x100 + 0x100 * core as u32,
                    data_base: sbst_mem::SRAM_BASE + 0x4000 + 0x800 * core as u32,
                    ..RoutineEnv::for_core(kind)
                };
                // The STL: generic boot-time routines of varying length
                // (the seed perturbs the mix — "initial SoC config").
                let stl = CoreStl {
                    routines: vec![
                        Box::new(RegFileTest::new()),
                        Box::new(GenericAluTest::new(6 + core as u32)),
                        Box::new(BranchTest::new()),
                        Box::new(LsuTest { rounds: 2 + seed as u32 % 2 }),
                        Box::new(GenericAluTest::new(5)),
                    ],
                    env,
                    watchdog: None,
                };
                let asm = build_stl_program(core, active as u32, &stl, &wrap, &layout);
                let base = scenario.code_base(core);
                builder = builder
                    .load(&asm.assemble(base).expect("stl assembles"))
                    .core(CoreConfig::uncached(kind, core, base), delays[core]);
            }
            let mut soc = builder.build();
            let outcome = soc.run(100_000_000);
            assert!(outcome.is_clean(), "table1 run: {outcome:?}");
            for core in 0..active {
                if_sum += soc.core(core).counters().if_stalls;
                mem_sum += soc.core(core).counters().mem_stalls;
            }
        }
        rows.push(Table1Row {
            active_cores: active,
            if_stalls: if_sum / effort.seeds.max(1),
            mem_stalls: mem_sum / effort.seeds.max(1),
        });
    }
    rows
}

/// Renders Table I in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "TABLE I — MULTI-CORE STL EXECUTION: STALLS DUE TO THE MEMORY SUBSYSTEM\n\
         # Active Cores | IF stalls [cycles] | MEM stalls [cycles]\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>14} | {:>18} | {:>19}\n",
            r.active_cores, r.if_stalls, r.mem_stalls
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

/// One row of Table II: forwarding-logic fault simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Core (0 = A, 1 = B, 2 = C).
    pub core: usize,
    /// Size of the full fault list.
    pub fault_count: usize,
    /// Faults actually graded (sampling).
    pub simulated: usize,
    /// Minimum coverage across the uncached sweep \[%\].
    pub fc_min: f64,
    /// Maximum coverage across the uncached sweep \[%\].
    pub fc_max: f64,
    /// Coverage with the cache-based wrapper \[%\].
    pub fc_cached: f64,
}

/// Reproduces Table II: the forwarding routine with performance counters
/// removed, fault-graded across the multi-core scenario sweep (no
/// caches: min–max oscillates) and under the cache-based wrapper
/// (stable, higher).
pub fn table2(effort: &Effort) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for (core, kind) in CoreKind::ALL.into_iter().enumerate() {
        let list = sbst_cpu::unit_fault_list(kind, Unit::Forwarding);
        let sample = effort.sample(&list);
        let factory = routines_for(Unit::Forwarding);
        // Uncached sweep.
        let sweep = Scenario::table2_sweep(effort.seeds.max(1));
        let step = (sweep.len() / effort.sweep_scenarios.max(1)).max(1);
        let (mut fc_min, mut fc_max) = (f64::MAX, f64::MIN);
        for scenario in sweep.iter().step_by(step) {
            let exp =
                Experiment::assemble(&*factory, kind, ExecStyle::LegacyUncached, scenario)
                    .expect("uncached experiment");
            let golden = exp.golden();
            let res = run_campaign_collapsed(&exp, &golden, &sample, effort.threads);
            fc_min = fc_min.min(res.coverage());
            fc_max = fc_max.max(res.coverage());
        }
        // Cache-wrapped (one scenario; determinism is asserted by the
        // test suite, so one is representative).
        let cached_scenario = Scenario { active_cores: 3, ..Scenario::single_core() };
        let exp = Experiment::assemble(
            &*factory,
            kind,
            ExecStyle::CacheWrapped,
            &cached_scenario,
        )
        .expect("cached experiment");
        let golden = exp.golden();
        let cached = run_campaign_collapsed(&exp, &golden, &sample, effort.threads);
        rows.push(Table2Row {
            core,
            fault_count: list.len(),
            simulated: sample.len(),
            fc_min,
            fc_max,
            fc_cached: cached.coverage(),
        });
    }
    rows
}

/// Renders Table II in the paper's layout.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "TABLE II — FORWARDING LOGIC FAULT SIMULATION RESULTS\n\
         Core | # of Faults | min - max FC [%] (no caches, no PCs) | FC [%] (with caches, no PCs)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>4} | {:>11} | {:>14.2} - {:<14.2}      | {:>10.2}\n",
            ["A", "B", "C"][r.core],
            r.fault_count,
            r.fc_min,
            r.fc_max,
            r.fc_cached
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------

/// One row of Table III: ICU / HDCU fault simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Core (0 = A, 1 = B, 2 = C).
    pub core: usize,
    /// Graded unit.
    pub unit: Unit,
    /// Size of the full fault list.
    pub fault_count: usize,
    /// Faults actually graded.
    pub simulated: usize,
    /// Coverage, single core, no caches \[%\].
    pub fc_single_nocache: f64,
    /// Coverage, three cores, cache-based wrapper \[%\].
    pub fc_multi_cached: f64,
}

/// Reproduces Table III: the complete ICU and HDCU routines graded in
/// the legacy single-core configuration (no caches) and in the
/// multi-core cache-wrapped configuration.
pub fn table3(effort: &Effort) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for (core, kind) in CoreKind::ALL.into_iter().enumerate() {
        for unit in [Unit::Icu, Unit::Hdcu] {
            let list = sbst_cpu::unit_fault_list(kind, unit);
            let sample = effort.sample(&list);
            let factory = routines_for(unit);
            let single = Scenario::single_core();
            let exp =
                Experiment::assemble(&*factory, kind, ExecStyle::LegacyUncached, &single)
                    .expect("single-core experiment");
            let golden = exp.golden();
            let fc_single = run_campaign_collapsed(&exp, &golden, &sample, effort.threads).coverage();
            let multi = Scenario { active_cores: 3, ..Scenario::single_core() };
            let exp = Experiment::assemble(&*factory, kind, ExecStyle::CacheWrapped, &multi)
                .expect("cached experiment");
            let golden = exp.golden();
            let fc_multi = run_campaign_collapsed(&exp, &golden, &sample, effort.threads).coverage();
            rows.push(Table3Row {
                core,
                unit,
                fault_count: list.len(),
                simulated: sample.len(),
                fc_single_nocache: fc_single,
                fc_multi_cached: fc_multi,
            });
        }
    }
    rows
}

/// Renders Table III in the paper's layout.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "TABLE III — ICU AND HDCU FAULT SIMULATION RESULTS\n\
         Core | Module | # of Faults | FC Single-Core no caches [%] | FC Multi-Core with caches [%]\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>4} | {:>6} | {:>11} | {:>28.2} | {:>29.2}\n",
            ["A", "B", "C"][r.core],
            match r.unit {
                Unit::Icu => "ICU",
                Unit::Hdcu => "HDCU",
                Unit::Forwarding => "FWD",
            },
            r.fault_count,
            r.fc_single_nocache,
            r.fc_multi_cached
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------

/// One row of Table IV: TCM-based vs cache-based execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    /// `"TCM-based"` or `"Cache-based"`.
    pub approach: &'static str,
    /// Memory permanently reserved \[bytes\].
    pub overhead_bytes: usize,
    /// Execution time \[clock cycles\].
    pub cycles: u64,
}

/// Reproduces Table IV on the imprecise-interrupt routine: overall
/// memory overhead and execution time of the two strategies.
pub fn table4() -> Vec<Table4Row> {
    let kind = CoreKind::A;
    let routine = IcuTest::new();
    let env = RoutineEnv::for_core(kind);
    let cfg = WrapConfig::default();
    let base = 0x400;
    // TCM-based.
    let tcm = wrap_tcm(&routine, &env, &cfg, "t4", base).expect("tcm wrap");
    let mut soc = SocBuilder::new()
        .load(&tcm.program)
        .core(CoreConfig::cached(kind, 0, base), 0)
        .build();
    let outcome = soc.run(50_000_000);
    assert!(outcome.is_clean(), "{outcome:?}");
    let tcm_cycles = soc.cycle();
    // Cache-based.
    let asm = sbst_stl::wrap_cached(&routine, &env, &cfg, "t4c").expect("cache wrap");
    let program = asm.assemble(base).expect("assembles");
    let mut soc = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(kind, 0, base), 0)
        .build();
    let outcome = soc.run(50_000_000);
    assert!(outcome.is_clean(), "{outcome:?}");
    vec![
        Table4Row {
            approach: "TCM-based",
            overhead_bytes: tcm.tcm_overhead_bytes,
            cycles: tcm_cycles,
        },
        Table4Row {
            approach: "Cache-based",
            overhead_bytes: 0,
            cycles: soc.cycle(),
        },
    ]
}

/// Renders Table IV in the paper's layout.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::from(
        "TABLE IV — TCM-BASED VERSUS CACHE-BASED APPROACHES FOR IMPRECISE INTERRUPTS\n\
         Approach    | Overall Memory Overhead [bytes] | Execution Time [clock cycles]\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} | {:>31} | {:>29}\n",
            r.approach, r.overhead_bytes, r.cycles
        ));
    }
    out
}
