//! Incremental campaign checkpointing and resumption.
//!
//! A fault campaign is thousands of independent full-SoC simulations;
//! killing the host process (preemption, OOM, operator ctrl-C) used to
//! lose everything. This module periodically serializes the per-fault
//! verdict vector to a small JSON file so a later invocation can skip
//! every already-graded site and finish the campaign with a
//! [`CampaignResult`] identical to an uninterrupted run.
//!
//! The checkpoint is bound to the *exact* fault list by a fingerprint
//! (FNV-1a over the site taxonomy in list order): resuming against a
//! different list, order, or taxonomy version is rejected instead of
//! silently mis-attributing verdicts. Since format version 2 it is
//! *also* bound to the SoC configuration that graded it (core kind,
//! execution style, scenario, cache geometry and write policy — see
//! [`fingerprint_config`]): a checkpoint resumed against a mismatched
//! ECU variant is rejected with [`CheckpointError::ConfigMismatch`]
//! instead of silently grading the wrong population.
//!
//! The on-disk format is deliberately tiny and hand-rolled (the build
//! is hermetic — no serde):
//!
//! ```json
//! {
//!   "version": 2,
//!   "fingerprint": 1234567890123,
//!   "config": 9876543210,
//!   "verdicts": ["hang", null, "undetected", ...]
//! }
//! ```
//!
//! `verdicts[i]` is `null` while fault `i` is still ungraded, else the
//! stable tag of [`Verdict`] (see [`Verdict::tag`]). Writes go through
//! a temp file + rename so a crash mid-write never corrupts the last
//! good checkpoint.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sbst_fault::{FaultList, FaultSite, Verdict};

use crate::experiment::ExperimentConfig;
use crate::faultsim::{
    grade_pending, CampaignError, CampaignResult, ExperimentGrader, FaultGrader,
};
use crate::{Experiment, Observation};

/// Current checkpoint file format version.
pub const CHECKPOINT_VERSION: u32 = 2;

/// The config fingerprint of a checkpoint whose grading configuration
/// was not recorded (grader-level campaigns with no SoC notion).
pub const CONFIG_UNBOUND: u64 = 0;

/// The persisted state of a (possibly partial) campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the fault list this checkpoint belongs to.
    pub fingerprint: u64,
    /// Fingerprint of the SoC/ECU configuration the verdicts were
    /// graded under ([`CONFIG_UNBOUND`] when not recorded).
    pub config: u64,
    /// Per-fault verdict slots, in fault-list order.
    pub verdicts: Vec<Option<Verdict>>,
}

/// Why a checkpoint could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file is not a valid checkpoint (message says where).
    Malformed(String),
    /// The checkpoint belongs to a different fault list.
    FingerprintMismatch {
        /// Fingerprint in the file.
        found: u64,
        /// Fingerprint of the offered fault list.
        expected: u64,
    },
    /// The checkpoint was graded under a different SoC configuration
    /// (core kind, scenario, cache geometry, write policy): its
    /// verdicts describe a different ECU population and must not be
    /// merged into this campaign.
    ConfigMismatch {
        /// Config fingerprint in the file.
        found: u64,
        /// Config fingerprint of the offered experiment.
        expected: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::FingerprintMismatch { found, expected } => write!(
                f,
                "checkpoint fingerprint {found:#x} does not match fault list {expected:#x}"
            ),
            CheckpointError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint was graded under SoC config {found:#x}, not the offered \
                 {expected:#x} — resuming would grade the wrong ECU population"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// FNV-1a over a byte stream.
pub(crate) fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Stable fingerprint of a fault list (FNV-1a over the `Debug`
/// rendering of each site, in order, plus the length).
pub fn fingerprint(faults: &FaultList) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut h, &(faults.len() as u64).to_le_bytes());
    for site in faults.iter() {
        fnv(&mut h, format!("{site:?}").as_bytes());
    }
    h
}

/// Stable fingerprint of an experiment's SoC configuration: core kind,
/// execution style, scenario (active cores / code position / alignment
/// / skew seed), wrapper settings and cache geometry incl. write
/// policy — everything that can change what a verdict means (FNV-1a
/// over the config's `Debug` rendering, which covers every field).
///
/// Never returns [`CONFIG_UNBOUND`]; the reserved "not recorded" value
/// is remapped so a real config can always be distinguished from an
/// unbound checkpoint.
pub fn fingerprint_config(config: &ExperimentConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut h, format!("{config:?}").as_bytes());
    if h == CONFIG_UNBOUND {
        h = 1;
    }
    h
}

impl Checkpoint {
    /// A fresh, fully ungraded checkpoint for `faults`, not bound to
    /// any SoC configuration.
    pub fn new(faults: &FaultList) -> Checkpoint {
        Checkpoint::with_config(faults, CONFIG_UNBOUND)
    }

    /// A fresh, fully ungraded checkpoint for `faults`, graded under
    /// the SoC configuration with fingerprint `config`.
    pub fn with_config(faults: &FaultList, config: u64) -> Checkpoint {
        Checkpoint {
            fingerprint: fingerprint(faults),
            config,
            verdicts: vec![None; faults.len()],
        }
    }

    /// Number of graded slots.
    pub fn completed(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_some()).count()
    }

    /// Whether every fault is graded.
    pub fn is_complete(&self) -> bool {
        self.verdicts.iter().all(|v| v.is_some())
    }

    /// Serializes to the checkpoint JSON format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + 16 * self.verdicts.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {CHECKPOINT_VERSION},\n"));
        out.push_str(&format!("  \"fingerprint\": {},\n", self.fingerprint));
        out.push_str(&format!("  \"config\": {},\n", self.config));
        out.push_str("  \"verdicts\": [");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match v {
                Some(v) => {
                    out.push('"');
                    out.push_str(v.tag());
                    out.push('"');
                }
                None => out.push_str("null"),
            }
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses the checkpoint JSON format.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Malformed`] with a description of the
    /// first offending construct.
    pub fn from_json(text: &str) -> Result<Checkpoint, CheckpointError> {
        let mut p = Parser { rest: text };
        p.expect('{')?;
        let mut version = None;
        let mut fp = None;
        let mut config = None;
        let mut verdicts = None;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "version" => version = Some(p.integer()?),
                "fingerprint" => fp = Some(p.integer()?),
                "config" => config = Some(p.integer()?),
                "verdicts" => verdicts = Some(p.verdict_array()?),
                other => {
                    return Err(CheckpointError::Malformed(format!("unknown key {other:?}")))
                }
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        let version = version.ok_or_else(|| malformed("missing version"))?;
        match version {
            // Version 1 predates config binding; treat it as unbound.
            1 => {}
            v if v == CHECKPOINT_VERSION as u64 => {}
            v => return Err(malformed(&format!("unsupported version {v}"))),
        }
        Ok(Checkpoint {
            fingerprint: fp.ok_or_else(|| malformed("missing fingerprint"))?,
            config: config.unwrap_or(CONFIG_UNBOUND),
            verdicts: verdicts.ok_or_else(|| malformed("missing verdicts"))?,
        })
    }

    /// Atomically and durably writes the checkpoint to `path`: temp
    /// file, fsync, rename, then (unix) fsync of the parent directory.
    /// Without the syncs a crash *after* the rename could still leave a
    /// complete-looking but truncated file (data not yet written back)
    /// or resurrect the old file (rename not yet journaled).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, self.to_json().as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // The rename itself must reach the directory's metadata.
        // Best-effort: not every filesystem lets a directory be synced.
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Loads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and format violations.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::from_json(&fs::read_to_string(path)?)
    }
}

pub(crate) fn malformed(msg: &str) -> CheckpointError {
    CheckpointError::Malformed(msg.to_string())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

/// A minimal parser for exactly the checkpoint schema (also reused by
/// the fleet's shard-result files, which share its vocabulary).
pub(crate) struct Parser<'a> {
    pub(crate) rest: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    pub(crate) fn expect(&mut self, c: char) -> Result<(), CheckpointError> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(r) => {
                self.rest = r;
                Ok(())
            }
            None => Err(malformed(&format!(
                "expected {c:?} at {:?}",
                &self.rest[..self.rest.len().min(20)]
            ))),
        }
    }

    /// `"..."` (no escapes — verdict tags and keys never need them).
    pub(crate) fn string(&mut self) -> Result<String, CheckpointError> {
        self.expect('"')?;
        let end = self
            .rest
            .find('"')
            .ok_or_else(|| malformed("unterminated string"))?;
        let s = self.rest[..end].to_string();
        self.rest = &self.rest[end + 1..];
        Ok(s)
    }

    pub(crate) fn integer(&mut self) -> Result<u64, CheckpointError> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(malformed("expected integer"));
        }
        let n = self.rest[..end]
            .parse()
            .map_err(|_| malformed("integer out of range"))?;
        self.rest = &self.rest[end..];
        Ok(n)
    }

    /// `, ` → `true` (more elements), or the closing char → `false`.
    pub(crate) fn comma_or(&mut self, close: char) -> Result<bool, CheckpointError> {
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(',') {
            self.rest = r;
            self.skip_ws();
            Ok(true)
        } else if let Some(r) = self.rest.strip_prefix(close) {
            self.rest = r;
            Ok(false)
        } else {
            Err(malformed(&format!("expected ',' or {close:?}")))
        }
    }

    pub(crate) fn verdict_array(&mut self) -> Result<Vec<Option<Verdict>>, CheckpointError> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(']') {
            self.rest = r;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            if let Some(r) = self.rest.strip_prefix("null") {
                self.rest = r;
                out.push(None);
            } else {
                let tag = self.string()?;
                let v = Verdict::from_tag(&tag)
                    .ok_or_else(|| malformed(&format!("unknown verdict tag {tag:?}")))?;
                out.push(Some(v));
            }
            if !self.comma_or(']')? {
                break;
            }
        }
        Ok(out)
    }
}

/// How a resumable campaign checkpoints itself.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where the checkpoint file lives.
    pub path: PathBuf,
    /// Persist after every `every` newly graded faults (and always once
    /// at the end). 0 behaves like 1.
    pub every: usize,
    /// Grade at most this many *new* faults, then save and return a
    /// partial outcome — the deterministic stand-in for an interrupt
    /// (also useful for time-boxed campaign slices).
    pub max_new: Option<usize>,
    /// Fingerprint of the SoC configuration doing the grading (see
    /// [`fingerprint_config`]). When not [`CONFIG_UNBOUND`], a
    /// checkpoint recorded under a *different* configuration is
    /// rejected with [`CheckpointError::ConfigMismatch`], and new
    /// checkpoints are stamped with this value.
    pub config: u64,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every 64 graded faults, no slice limit, no
    /// configuration binding.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig { path: path.into(), every: 64, max_new: None, config: CONFIG_UNBOUND }
    }

    /// Like [`new`](CheckpointConfig::new) but bound to the SoC
    /// configuration with fingerprint `config`.
    pub fn bound(path: impl Into<PathBuf>, config: u64) -> CheckpointConfig {
        CheckpointConfig { config, ..CheckpointConfig::new(path) }
    }
}

/// Outcome of a resumable campaign invocation.
#[derive(Debug)]
pub struct ResumableOutcome {
    /// Aggregate over every *graded* fault so far.
    pub result: CampaignResult,
    /// Per-fault records for graded faults (fault-list order).
    pub records: Vec<(FaultSite, Verdict)>,
    /// Simulation crashes recorded during *this* invocation.
    pub errors: Vec<CampaignError>,
    /// Whether every fault of the list is now graded.
    pub complete: bool,
    /// Faults graded by this invocation (as opposed to restored from
    /// the checkpoint).
    pub newly_graded: usize,
}

/// Runs (or resumes) a checkpointed campaign against any grader.
///
/// If `cfg.path` holds a checkpoint for exactly this fault list, its
/// verdicts are restored and those sites are skipped; otherwise a fresh
/// checkpoint is started. Progress is persisted every `cfg.every`
/// completions and once at the end, so a killed process loses at most
/// `cfg.every` simulations.
///
/// # Errors
///
/// Propagates checkpoint I/O and format errors. A checkpoint whose
/// fingerprint does not match `faults` is an error — pass a different
/// path (or delete the file) to start over.
pub fn resume_campaign_graded(
    grader: &dyn FaultGrader,
    faults: &FaultList,
    threads: usize,
    cfg: &CheckpointConfig,
) -> Result<ResumableOutcome, CheckpointError> {
    let fp = fingerprint(faults);
    let mut checkpoint = if cfg.path.exists() {
        let cp = Checkpoint::load(&cfg.path)?;
        if cp.fingerprint != fp {
            return Err(CheckpointError::FingerprintMismatch {
                found: cp.fingerprint,
                expected: fp,
            });
        }
        if cfg.config != CONFIG_UNBOUND && cp.config != cfg.config {
            return Err(CheckpointError::ConfigMismatch {
                found: cp.config,
                expected: cfg.config,
            });
        }
        if cp.verdicts.len() != faults.len() {
            return Err(malformed(&format!(
                "checkpoint has {} slots for {} faults",
                cp.verdicts.len(),
                faults.len()
            )));
        }
        cp
    } else {
        Checkpoint::with_config(faults, cfg.config)
    };
    let restored = checkpoint.completed();

    // Cap this slice: pre-fill the slots we are *not* allowed to touch
    // with a sentinel so the engine skips them, then blank them again
    // before reporting.
    let mut masked = Vec::new();
    if let Some(max_new) = cfg.max_new {
        let mut allowed = max_new;
        for (i, v) in checkpoint.verdicts.iter_mut().enumerate() {
            if v.is_none() {
                if allowed == 0 {
                    *v = Some(Verdict::SimError); // placeholder, blanked below
                    masked.push(i);
                } else {
                    allowed -= 1;
                }
            }
        }
    }

    let every = cfg.every.max(1);
    let pending = Mutex::new(std::mem::take(&mut checkpoint.verdicts));
    let errors = Mutex::new(Vec::new());
    let save_state = Mutex::new((restored + masked.len(), cfg.path.clone(), fp));
    let masked_ref = &masked;
    grade_pending(grader, faults.sites(), &pending, &errors, threads, &|slots| {
        let mut state = save_state.lock().expect("save state");
        let done = slots.iter().filter(|v| v.is_some()).count();
        if done >= state.0 + every {
            state.0 = done;
            let mut snapshot =
                Checkpoint { fingerprint: state.2, config: cfg.config, verdicts: slots.to_vec() };
            for &i in masked_ref {
                snapshot.verdicts[i] = None;
            }
            // Persist best-effort: a failed write must not kill workers.
            let _ = snapshot.save(&state.1);
        }
    });

    checkpoint.verdicts = pending.into_inner().expect("verdict slots");
    for &i in &masked {
        checkpoint.verdicts[i] = None;
    }
    checkpoint.save(&cfg.path)?;

    let records: Vec<(FaultSite, Verdict)> = faults
        .sites()
        .iter()
        .zip(&checkpoint.verdicts)
        .filter_map(|(&s, v)| v.map(|v| (s, v)))
        .collect();
    let newly_graded = checkpoint.completed() - restored;
    Ok(ResumableOutcome {
        result: CampaignResult::from_records(&records),
        complete: checkpoint.is_complete(),
        records,
        errors: errors.into_inner().expect("error log"),
        newly_graded,
    })
}

/// Runs (or resumes) a checkpointed campaign of `experiment` over
/// `faults` — the production entry point; see
/// [`resume_campaign_graded`] for the semantics.
///
/// The checkpoint is bound to the experiment's SoC configuration: if
/// `cfg` does not already pin a config fingerprint, the experiment's
/// own is used, so a checkpoint recorded under a different core kind,
/// scenario or cache geometry is rejected instead of silently graded
/// against the wrong population.
///
/// # Errors
///
/// Propagates checkpoint I/O and format errors.
pub fn resume_campaign(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
    cfg: &CheckpointConfig,
) -> Result<ResumableOutcome, CheckpointError> {
    let grader = ExperimentGrader { experiment, golden };
    let cfg = if cfg.config == CONFIG_UNBOUND {
        CheckpointConfig { config: experiment.config_fingerprint(), ..cfg.clone() }
    } else {
        cfg.clone()
    };
    resume_campaign_graded(&grader, faults, threads, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbst_fault::{Element, Polarity, Unit};

    fn list(n: u16) -> FaultList {
        (0..n)
            .map(|i| FaultSite {
                unit: Unit::Hdcu,
                instance: i,
                element: Element::CmpOut,
                polarity: Polarity::StuckAt0,
            })
            .collect()
    }

    #[test]
    fn json_round_trip_preserves_every_slot() {
        let mut cp = Checkpoint::with_config(&list(7), 0xdead_beef);
        cp.verdicts[0] = Some(Verdict::Hang);
        cp.verdicts[3] = Some(Verdict::Undetected);
        cp.verdicts[6] = Some(Verdict::SimError);
        let back = Checkpoint::from_json(&cp.to_json()).expect("parses");
        assert_eq!(cp, back);
        assert_eq!(back.config, 0xdead_beef);
    }

    #[test]
    fn version_1_checkpoints_parse_as_config_unbound() {
        let text = "{\"version\": 1, \"fingerprint\": 42, \"verdicts\": [\"hang\", null]}";
        let cp = Checkpoint::from_json(text).expect("v1 parses");
        assert_eq!(cp.config, CONFIG_UNBOUND);
        assert_eq!(cp.fingerprint, 42);
        assert_eq!(cp.verdicts, vec![Some(Verdict::Hang), None]);
    }

    #[test]
    fn empty_list_round_trips() {
        let cp = Checkpoint::new(&FaultList::new());
        let back = Checkpoint::from_json(&cp.to_json()).expect("parses");
        assert_eq!(cp, back);
        assert!(back.is_complete());
    }

    #[test]
    fn fingerprint_tracks_order_and_content() {
        let a = list(5);
        let b = list(6);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let mut rev: Vec<_> = a.iter().copied().collect();
        rev.reverse();
        assert_ne!(fingerprint(&a), fingerprint(&rev.into_iter().collect()));
        assert_eq!(fingerprint(&a), fingerprint(&list(5)));
    }

    #[test]
    fn save_is_durable_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("det-sbst-cp-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("chk.json");
        let mut cp = Checkpoint::new(&list(4));
        cp.verdicts[1] = Some(Verdict::Hang);
        cp.save(&path).expect("saves");
        assert_eq!(Checkpoint::load(&path).expect("loads"), cp);
        assert!(!tmp_path(&path).exists(), "temp file must not linger");
        // Overwriting replaces the previous checkpoint wholesale.
        cp.verdicts[2] = Some(Verdict::Undetected);
        cp.save(&path).expect("saves again");
        assert_eq!(Checkpoint::load(&path).expect("reloads"), cp);
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_checkpoints_are_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"version\": 2}",
            "{\"version\": 99, \"fingerprint\": 1, \"verdicts\": []}",
            "{\"version\": 2, \"fingerprint\": 1, \"verdicts\": [\"bogus\"]}",
        ] {
            assert!(Checkpoint::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Torn-write regression: a worker killed mid-save must never leave
    /// a truncated/corrupt checkpoint where the last good one was. The
    /// save protocol (write to a same-directory temp file, then rename
    /// over the target) means a crash can only ever leave (a) the old
    /// intact file plus a partial temp file, or (b) the new intact
    /// file — never a torn target.
    #[test]
    fn torn_write_cannot_corrupt_the_last_good_checkpoint() {
        let dir = std::env::temp_dir().join(format!("det-sbst-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("torn.ckpt.json");
        let mut good = Checkpoint::with_config(&list(6), 7);
        good.verdicts[2] = Some(Verdict::WrongSignature);
        good.save(&path).expect("saves");

        // Simulate a crash mid-save of a *newer* checkpoint: the temp
        // file holds a torn prefix, the rename never happened.
        let mut newer = good.clone();
        newer.verdicts[4] = Some(Verdict::Hang);
        let torn = &newer.to_json()[..newer.to_json().len() / 2];
        fs::write(tmp_path(&path), torn).expect("write torn temp");
        assert_eq!(
            Checkpoint::load(&path).expect("last good checkpoint intact"),
            good,
            "a torn temp file must never shadow the target"
        );

        // The next save replaces the leftover temp file and completes.
        newer.save(&path).expect("saves over leftover temp");
        assert_eq!(Checkpoint::load(&path).expect("loads"), newer);
        assert!(!tmp_path(&path).exists());

        // And a directly torn *target* (the failure mode the temp+rename
        // protocol exists to prevent) is rejected as malformed, never
        // silently half-parsed.
        fs::write(&path, torn).expect("write torn target");
        assert!(matches!(
            Checkpoint::load(&path),
            Err(CheckpointError::Malformed(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_tracks_every_config_axis() {
        use crate::{ExecStyle, ExperimentConfig};
        use sbst_cpu::CoreKind;
        use sbst_mem::{CacheConfig, WritePolicy};
        use sbst_soc::Scenario;

        let base = ExperimentConfig::new(
            CoreKind::A,
            ExecStyle::CacheWrapped,
            Scenario::single_core(),
        );
        let fp = fingerprint_config(&base);
        assert_ne!(fp, CONFIG_UNBOUND, "real configs never collide with the unbound value");
        assert_eq!(fp, fingerprint_config(&base), "deterministic");

        let variants = [
            ExperimentConfig { kind: CoreKind::B, ..base },
            ExperimentConfig { style: ExecStyle::LegacyUncached, ..base },
            ExperimentConfig {
                scenario: Scenario { active_cores: 3, ..base.scenario },
                ..base
            },
            ExperimentConfig {
                dcache: CacheConfig {
                    policy: WritePolicy::NoWriteAllocate,
                    ..CacheConfig::dcache_4k()
                },
                ..base
            },
            ExperimentConfig {
                icache: CacheConfig { size_bytes: 4 * 1024, ..CacheConfig::icache_8k() },
                ..base
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(fp, fingerprint_config(v), "variant #{i} must change the fingerprint");
        }
    }
}
