//! Routine-splitting coverage experiment (paper §III.2.2).
//!
//! The paper claims splitting an oversized routine into several smaller
//! cache-resident self-test procedures "does not compromise the fault
//! coverage of the original single-core test procedure". This experiment
//! verifies it: a fault counts as detected by the split plan when *any*
//! part detects it, and the union coverage is compared against the
//! unsplit routine graded with an unconstrained cache.

use std::sync::Arc;

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_fault::{FaultList, FaultPlane};
use sbst_soc::SocBuilder;
use sbst_stl::routines::ForwardingTest;
use sbst_stl::{plan_cached, wrap_cached, RoutineEnv, WrapConfig, WrapError};

/// Outcome of the split-vs-whole comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitComparison {
    /// Number of parts the routine was split into.
    pub parts: usize,
    /// Coverage of the unsplit routine \[%\].
    pub whole_coverage: f64,
    /// Union coverage of the split parts \[%\].
    pub split_coverage: f64,
    /// Faults graded.
    pub total: usize,
}

/// Runs the comparison on core C's forwarding routine (the largest one)
/// against `faults`, with the split forced by `capacity` bytes of I$.
///
/// # Errors
///
/// Propagates wrapper errors (e.g. the routine cannot split far enough).
pub fn split_union_coverage(
    kind: CoreKind,
    faults: &FaultList,
    capacity: u32,
    threads: usize,
) -> Result<SplitComparison, WrapError> {
    let routine = ForwardingTest::without_pcs(kind);
    let env = RoutineEnv::for_core(kind);

    // Whole routine, unconstrained capacity.
    let whole_cfg = WrapConfig { icache_capacity: u32::MAX, ..WrapConfig::default() };
    let whole = wrap_cached(&routine, &env, &whole_cfg, "whole")?;
    let whole_detected = grade_each(&whole, &env, kind, faults, threads);
    let whole_count = whole_detected.iter().filter(|&&d| d).count();

    // Split plan under the constrained capacity.
    let split_cfg = WrapConfig { icache_capacity: capacity, ..WrapConfig::default() };
    let parts = plan_cached(&routine, &env, &split_cfg, "part")?;
    assert!(parts.len() > 1, "capacity {capacity} did not force a split");
    // A fault is detected by the plan if any part detects it.
    let mut detected = vec![false; faults.len()];
    for (i, part) in parts.iter().enumerate() {
        let part_env = RoutineEnv { result_addr: env.result_addr + 16 * i as u32, ..env };
        let res = grade_each(part, &part_env, kind, faults, threads);
        for (d, v) in detected.iter_mut().zip(res) {
            *d |= v;
        }
    }
    let union = detected.iter().filter(|&&d| d).count();
    Ok(SplitComparison {
        parts: parts.len(),
        whole_coverage: 100.0 * whole_count as f64 / faults.len().max(1) as f64,
        split_coverage: 100.0 * union as f64 / faults.len().max(1) as f64,
        total: faults.len(),
    })
}

/// Per-fault detection vector for one program.
fn grade_each(
    asm: &sbst_isa::Asm,
    env: &RoutineEnv,
    kind: CoreKind,
    faults: &FaultList,
    threads: usize,
) -> Vec<bool> {
    let base = 0x400;
    let program = asm.assemble(base).expect("assembles");
    let builder = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(kind, 0, base), 0);
    let image = builder.freeze_image();
    let golden = {
        let mut soc = builder.build_shared(Arc::clone(&image));
        let outcome = soc.run(50_000_000);
        assert!(outcome.is_clean(), "golden split run: {outcome:?}");
        (soc.peek(env.result_addr), soc.peek(env.result_addr + 4), soc.cycle())
    };
    let watchdog = golden.2 * 4 + 20_000;
    let run_one = |plane: FaultPlane| {
        let mut soc = builder.build_shared(Arc::clone(&image));
        soc.core_mut(0).set_plane(plane);
        let outcome = soc.run(watchdog);
        match outcome {
            sbst_soc::RunOutcome::AllHalted { .. } => {
                soc.peek(env.result_addr) != golden.0 || soc.peek(env.result_addr + 4) != golden.1
            }
            _ => true, // hang or fatal trap: detected
        }
    };
    let threads = crate::faultsim::resolve_threads(threads);
    let sites = faults.sites();
    let mut out = vec![false; sites.len()];
    let chunk_size = sites.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (chunk, sites) in out.chunks_mut(chunk_size).zip(sites.chunks(chunk_size)) {
            let run_one = &run_one;
            scope.spawn(move || {
                for (o, &site) in chunk.iter_mut().zip(sites) {
                    *o = run_one(FaultPlane::armed(site));
                }
            });
        }
    });
    out
}
