//! Chaos campaign: sweeping adversarial bus interference × transient
//! upset rate against the self-healing cache-wrapped runtime.
//!
//! Each cell of the sweep fixes an injector *intensity* (0 = quiet bus,
//! 100 = full saturation) and an SEU *rate* (strikes per million
//! cycles), then runs `trials` independent healed executions of the
//! counter-sensitive forwarding routine. Per trial the healer's
//! [`RecoveryReport`](sbst_stl::RecoveryReport) is classified:
//!
//! * **clean** — first run's signature cross-checked OK;
//! * **recovered** — a retry (fresh SoC, re-seeded transients) healed
//!   it;
//! * **quarantined** — the retry budget ran out, escalation;
//! * **silent** — the healer *trusted* a signature that differs from
//!   the fault-free golden. The headline invariant of the chaos layer
//!   is that this count stays **zero** in every cell.
//!
//! A second derived invariant: in cells with SEU rate 0 (interference
//! only), quarantine is a *false* quarantine — the deterministic
//! wrapper makes timing interference invisible to the signature, so
//! these must also be zero.

use std::sync::Arc;

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_mem::{InjectorProgram, Prng, SeuConfig};
use sbst_soc::{ChaosConfig, SocBuilder};
use sbst_stl::routines::ForwardingTest;
use sbst_stl::{
    cycle_budget_for, learn_golden_cached, run_self_healing, wrap_cached, CheckMode, HealAction,
    HealConfig, RoutineEnv, RunReport, WrapConfig, WrapError, RESULT_SIG_OFF, RESULT_STATUS_OFF,
};

/// Flash base the chaos program is assembled at.
const CHAOS_BASE: u32 = 0x1000;

/// The sweep's axes and budgets.
#[derive(Debug, Clone)]
pub struct ChaosSweepConfig {
    /// Injector intensities (0..=100; 0 = idle, 100 = saturation).
    pub intensities: Vec<u32>,
    /// SEU rates in strikes per million cycles (0 = off).
    pub seu_rates: Vec<u32>,
    /// Healed executions per cell.
    pub trials: usize,
    /// Root seed: every injector program and strike schedule derives
    /// from it, so a sweep is reproducible end to end.
    pub seed: u64,
    /// Healer retry budget per trial.
    pub max_retries: usize,
}

impl ChaosSweepConfig {
    /// The default grid: quiet/moderate/saturated bus × off/low/high
    /// upset rates.
    pub fn default_sweep(seed: u64) -> ChaosSweepConfig {
        ChaosSweepConfig {
            intensities: vec![0, 40, 100],
            seu_rates: vec![0, 300, 3_000],
            trials: 4,
            seed,
            max_retries: 3,
        }
    }

    /// A tiny grid for CI smoke runs. The non-zero SEU rate is moderate
    /// (roughly one or two strikes per ~2k-cycle run) so both the
    /// recovery and the escalation legs get exercised.
    pub fn smoke(seed: u64) -> ChaosSweepConfig {
        ChaosSweepConfig {
            intensities: vec![0, 100],
            seu_rates: vec![0, 1_000],
            trials: 3,
            seed,
            max_retries: 3,
        }
    }
}

/// Aggregated outcomes of one (intensity, rate) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosCell {
    /// Injector intensity of this cell.
    pub intensity: u32,
    /// SEU rate of this cell (ppm).
    pub seu_rate_ppm: u32,
    /// Trials executed.
    pub trials: usize,
    /// Trials whose first run cross-checked clean.
    pub clean: usize,
    /// Trials healed by at least one retry.
    pub recovered: usize,
    /// Trials escalated to quarantine.
    pub quarantined: usize,
    /// Trials where a trusted signature differed from the golden —
    /// must stay 0.
    pub silent: usize,
    /// Full-SoC simulations consumed (runs, including votes/retries).
    pub runs: u64,
    /// SEU strikes that corrupted real state across all runs.
    pub seu_landed: u64,
    /// Requests the traffic injector issued across all runs.
    pub injector_requests: u64,
    /// Worst single grant latency observed on any bus port (cycles).
    pub max_grant_wait: u64,
    /// Total cycles any master spent waiting for a grant.
    pub bus_wait_cycles: u64,
    /// Analytical per-access worst-case grant latency certified for
    /// this cell's platform (round-robin over the cell's port count).
    pub certified_bound: u64,
    /// Runs in which any port's observed worst wait exceeded its
    /// certified bound — the sweep's hardest invariant: **0**, for
    /// every cell, including full saturation.
    pub bound_violations: u64,
}

/// The whole sweep's outcome.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Golden signature every trusted signature was audited against.
    pub golden: u32,
    /// One entry per (intensity, rate) cell, rate-major order.
    pub cells: Vec<ChaosCell>,
}

/// Sweep-level telemetry totals of a [`ChaosReport`] — the summary the
/// benchmark harness merges into `BENCH_campaign.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosTelemetry {
    /// Sweep cells executed.
    pub cells: u64,
    /// Trials across all cells.
    pub trials: u64,
    /// Trials clean on the first run.
    pub clean: u64,
    /// Trials healed by a retry.
    pub recovered: u64,
    /// Trials escalated to quarantine.
    pub quarantined: u64,
    /// Silent corruptions (invariant: 0).
    pub silent: u64,
    /// Quarantines in interference-only cells (invariant: 0).
    pub false_quarantines: u64,
    /// Full-SoC simulations consumed.
    pub runs: u64,
    /// SEU strikes that corrupted real state.
    pub seu_landed: u64,
    /// Requests issued by the traffic injector.
    pub injector_requests: u64,
    /// Worst single grant latency on any bus port (cycles).
    pub max_grant_wait: u64,
    /// Total grant-wait cycles across all masters and runs.
    pub bus_wait_cycles: u64,
    /// Certified per-access worst-case grant latency (cycles).
    pub certified_bound: u64,
    /// Runs whose observed wait exceeded the certified bound
    /// (invariant: 0).
    pub bound_violations: u64,
}

impl ChaosTelemetry {
    /// Renders the totals as a JSON object.
    pub fn to_json(&self) -> sbst_obs::Json {
        use sbst_obs::Json;
        Json::Obj(vec![
            ("cells".into(), Json::int(self.cells)),
            ("trials".into(), Json::int(self.trials)),
            ("clean".into(), Json::int(self.clean)),
            ("recovered".into(), Json::int(self.recovered)),
            ("quarantined".into(), Json::int(self.quarantined)),
            ("silent".into(), Json::int(self.silent)),
            ("false_quarantines".into(), Json::int(self.false_quarantines)),
            ("runs".into(), Json::int(self.runs)),
            ("seu_landed".into(), Json::int(self.seu_landed)),
            ("injector_requests".into(), Json::int(self.injector_requests)),
            ("max_grant_wait".into(), Json::int(self.max_grant_wait)),
            ("bus_wait_cycles".into(), Json::int(self.bus_wait_cycles)),
            ("certified_bound".into(), Json::int(self.certified_bound)),
            ("bound_violations".into(), Json::int(self.bound_violations)),
        ])
    }
}

impl ChaosReport {
    /// Total silent corruptions — the invariant is 0.
    pub fn silent_total(&self) -> usize {
        self.cells.iter().map(|c| c.silent).sum()
    }

    /// Sweep-level telemetry totals.
    pub fn telemetry(&self) -> ChaosTelemetry {
        let mut t = ChaosTelemetry {
            cells: self.cells.len() as u64,
            false_quarantines: self.false_quarantines() as u64,
            ..ChaosTelemetry::default()
        };
        for c in &self.cells {
            t.trials += c.trials as u64;
            t.clean += c.clean as u64;
            t.recovered += c.recovered as u64;
            t.quarantined += c.quarantined as u64;
            t.silent += c.silent as u64;
            t.runs += c.runs;
            t.seu_landed += c.seu_landed;
            t.injector_requests += c.injector_requests;
            t.max_grant_wait = t.max_grant_wait.max(c.max_grant_wait);
            t.bus_wait_cycles += c.bus_wait_cycles;
            t.certified_bound = t.certified_bound.max(c.certified_bound);
            t.bound_violations += c.bound_violations;
        }
        t
    }

    /// Bound violations across the whole sweep — the invariant is 0.
    pub fn bound_violations_total(&self) -> u64 {
        self.cells.iter().map(|c| c.bound_violations).sum()
    }

    /// Quarantines in interference-only cells (SEU rate 0) — these are
    /// false alarms; the invariant is 0.
    pub fn false_quarantines(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.seu_rate_ppm == 0)
            .map(|c| c.quarantined)
            .sum()
    }

    /// Trials recovered across the whole sweep.
    pub fn recovered_total(&self) -> usize {
        self.cells.iter().map(|c| c.recovered).sum()
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>9} {:>8} {:>6} {:>6} {:>10} {:>11} {:>7} {:>7} {:>9} {:>10} {:>7} {:>9}",
            "intensity", "seu_ppm", "clean", "recov", "quarantine", "silent",
            "runs", "strikes", "inj_reqs", "max_wait", "bound", "violation"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:>9} {:>8} {:>6} {:>6} {:>10} {:>11} {:>7} {:>7} {:>9} {:>10} {:>7} {:>9}",
                c.intensity, c.seu_rate_ppm, c.clean, c.recovered, c.quarantined,
                c.silent, c.runs, c.seu_landed, c.injector_requests, c.max_grant_wait,
                c.certified_bound, c.bound_violations
            )?;
        }
        write!(
            f,
            "totals: silent={} false_quarantines={} recovered={} bound_violations={}",
            self.silent_total(),
            self.false_quarantines(),
            self.recovered_total(),
            self.bound_violations_total()
        )
    }
}

/// Runs the chaos sweep.
///
/// The routine under test is the forwarding test *with* performance
/// counters — the paper's poster child for contention-sensitivity: its
/// unwrapped signature folds stall counters and therefore moves with
/// bus traffic, so any wrapper leak would show up immediately.
///
/// Trials alternate the healer's cross-check: even trials compare
/// against the learned golden, odd trials use the 2-of-3 vote (and the
/// voted signature is then *audited* against the golden — a vote that
/// trusts a wrong signature counts as silent corruption).
///
/// # Errors
///
/// Propagates wrapper/assembly errors.
pub fn run_chaos_campaign(cfg: &ChaosSweepConfig) -> Result<ChaosReport, WrapError> {
    let kind = CoreKind::A;
    let routine = ForwardingTest::with_pcs(kind);
    let env = RoutineEnv::for_core(kind);
    let wrap = WrapConfig::default();
    let golden = learn_golden_cached(&routine, &env, &wrap, kind, CHAOS_BASE)?;

    let asm = wrap_cached(&routine, &env, &wrap, "chaos")?;
    let program = asm.assemble(CHAOS_BASE)?;
    let budget = cycle_budget_for(&env, &asm);
    let image = {
        let mut b = SocBuilder::new();
        b = b.load(&program);
        b.freeze_image()
    };

    let root = Prng::new(cfg.seed);
    let mut cells = Vec::new();
    for (ri, &rate) in cfg.seu_rates.iter().enumerate() {
        for (ii, &intensity) in cfg.intensities.iter().enumerate() {
            let mut cell = ChaosCell {
                intensity,
                seu_rate_ppm: rate,
                trials: cfg.trials,
                clean: 0,
                recovered: 0,
                quarantined: 0,
                silent: 0,
                runs: 0,
                seu_landed: 0,
                injector_requests: 0,
                max_grant_wait: 0,
                bus_wait_cycles: 0,
                certified_bound: 0,
                bound_violations: 0,
            };
            for trial in 0..cfg.trials {
                let mut seeds =
                    root.split(((ri * 101 + ii) * 1009 + trial) as u64 + 1);
                let chaos = ChaosConfig {
                    injector: InjectorProgram::with_intensity(intensity, seeds.next_u64()),
                    seu: SeuConfig::at_rate(seeds.next_u64(), rate),
                };
                let check = if trial % 2 == 0 {
                    CheckMode::Golden(golden)
                } else {
                    CheckMode::Vote
                };
                let heal = HealConfig { max_retries: cfg.max_retries, check };
                let report = run_self_healing(&heal, |attempt| {
                    let mut soc = SocBuilder::new()
                        .core(CoreConfig::cached(kind, 0, CHAOS_BASE), 0)
                        .chaos(chaos.for_attempt(attempt))
                        .build_shared(Arc::clone(&image));
                    let outcome = soc.run(budget);
                    cell.runs += 1;
                    cell.seu_landed += soc.seu_landed() as u64;
                    if let Some(s) = soc.injector_stats() {
                        cell.injector_requests += s.requests;
                    }
                    let bs = soc.bus().stats();
                    cell.max_grant_wait = cell
                        .max_grant_wait
                        .max(bs.max_grant_wait.iter().copied().max().unwrap_or(0));
                    cell.bus_wait_cycles += bs.wait_cycles.iter().sum::<u64>();
                    // Judge every port's observed worst wait against the
                    // analytical bound of this platform (round-robin, so
                    // every port is bounded).
                    let bounds = soc.bus().bound_params();
                    let mut violated = false;
                    for (p, &observed) in bs.max_grant_wait.iter().enumerate() {
                        let b = bounds.per_access_wcl(p);
                        cell.certified_bound =
                            cell.certified_bound.max(b.cycles().unwrap_or(0));
                        violated |= !b.admits(observed);
                    }
                    cell.bound_violations += u64::from(violated);
                    RunReport {
                        outcome,
                        signature: soc.peek(env.result_addr + RESULT_SIG_OFF as u32),
                        status: soc.peek(env.result_addr + RESULT_STATUS_OFF as u32),
                        cycles: soc.cycle(),
                    }
                });
                match report.action {
                    HealAction::Clean => cell.clean += 1,
                    HealAction::Recovered { .. } => cell.recovered += 1,
                    HealAction::Quarantine { .. } => cell.quarantined += 1,
                }
                // Audit: a signature the healer trusted but that is not
                // the fault-free golden is a silent corruption.
                if let Some(sig) = report.signature {
                    if sig != golden {
                        cell.silent += 1;
                    }
                }
            }
            cells.push(cell);
        }
    }
    Ok(ChaosReport { golden, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_has_no_silent_corruption_or_false_quarantine() {
        let cfg = ChaosSweepConfig {
            intensities: vec![0, 80],
            seu_rates: vec![0, 2_000],
            trials: 2,
            seed: 0xc4a0,
            max_retries: 3,
        };
        let report = run_chaos_campaign(&cfg).expect("sweep runs");
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.silent_total(), 0, "{report}");
        assert_eq!(report.false_quarantines(), 0, "{report}");
        assert_eq!(report.bound_violations_total(), 0, "{report}");
        // Every cell carries the analytical certificate it was judged
        // against (1 core + injector = 3 ports, round-robin).
        for c in &report.cells {
            assert!(c.certified_bound > 0, "{report}");
            assert!(c.max_grant_wait <= c.certified_bound, "{report}");
        }
        // Interference-only cells are not merely non-quarantined: every
        // trial is clean on the first try (the wrapper absorbs timing).
        for c in report.cells.iter().filter(|c| c.seu_rate_ppm == 0) {
            assert_eq!(c.clean, c.trials, "{report}");
        }
        // The saturating injector demonstrably contended for the bus.
        let hot = report
            .cells
            .iter()
            .find(|c| c.intensity == 80 && c.seu_rate_ppm == 0)
            .expect("hot cell");
        assert!(hot.injector_requests > 0, "{report}");
        assert!(hot.max_grant_wait > 0, "{report}");
    }
}
