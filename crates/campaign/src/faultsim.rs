//! The parallel fault-simulation engine.
//!
//! Robustness contract: one fault's simulation crashing (a harness
//! defect — the fault model itself never panics on purpose) must not
//! abort the campaign. Every per-fault evaluation runs under
//! [`std::panic::catch_unwind`]; a panic is recorded as
//! [`Verdict::SimError`] against the offending [`FaultSite`] together
//! with the panic message, and every other fault's verdict is
//! unaffected. Worker-thread join failures are aggregated the same way
//! instead of being `expect`ed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sbst_fault::{FaultList, FaultSite, Verdict};

use crate::experiment::{Experiment, Observation, Snapshot};

/// Grades one fault site into a [`Verdict`] — the seam the campaign
/// engine runs behind. The production implementation is an
/// [`Experiment`] plus its golden [`Observation`]; tests substitute
/// graders that panic or misbehave to exercise the engine's isolation.
pub trait FaultGrader: Sync {
    /// Simulates `site` and classifies the outcome.
    fn grade(&self, site: FaultSite) -> Verdict;
}

/// The production grader: a fault-free reference plus the experiment.
pub struct ExperimentGrader<'a> {
    /// The configured experiment.
    pub experiment: &'a Experiment,
    /// Its golden observation.
    pub golden: &'a Observation,
}

impl FaultGrader for ExperimentGrader<'_> {
    fn grade(&self, site: FaultSite) -> Verdict {
        self.experiment.test_fault(self.golden, site)
    }
}

/// The warm-start grader: clones the golden-prefix [`Snapshot`] per
/// fault and simulates only the tail with early-verdict exit (the
/// campaign fast path; verdict-equivalent to [`ExperimentGrader`],
/// asserted by the warm-start test suite).
pub struct WarmExperimentGrader<'a> {
    /// The configured experiment.
    pub experiment: &'a Experiment,
    /// Its golden observation.
    pub golden: &'a Observation,
    /// The golden-prefix snapshot (see [`Experiment::snapshot`]).
    pub snapshot: &'a Snapshot,
}

impl FaultGrader for WarmExperimentGrader<'_> {
    fn grade(&self, site: FaultSite) -> Verdict {
        self.experiment.test_fault_warm(self.golden, self.snapshot, site)
    }
}

/// One recorded simulation failure: which fault's evaluation crashed
/// (or which worker died) and the rendered panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// The fault whose simulation crashed; `None` for a worker-level
    /// failure not attributable to a single site.
    pub site: Option<FaultSite>,
    /// Index of the fault in the graded list (`usize::MAX` for
    /// worker-level failures).
    pub index: usize,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.site {
            Some(site) => write!(f, "fault #{} {:?}: {}", self.index, site, self.message),
            None => write!(f, "worker: {}", self.message),
        }
    }
}

/// Renders a `catch_unwind` payload into a readable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Aggregated result of fault-simulating one fault list against one
/// experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignResult {
    /// Faults simulated.
    pub total: usize,
    /// Detected via signature mismatch.
    pub wrong_signature: usize,
    /// Detected via the routine's own FAIL status.
    pub test_fail: usize,
    /// Detected via an unexpected trap.
    pub unexpected_trap: usize,
    /// Detected via the watchdog (hang).
    pub hang: usize,
    /// Not detected.
    pub undetected: usize,
    /// Simulations that crashed (harness defects, not silicon verdicts).
    pub sim_errors: usize,
}

impl CampaignResult {
    /// Total detections (crashed simulations prove nothing and are
    /// excluded).
    pub fn detected(&self) -> usize {
        self.total - self.undetected - self.sim_errors
    }

    /// Fault coverage in percent.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.detected() as f64 / self.total as f64
    }

    pub(crate) fn record(&mut self, verdict: Verdict) {
        self.total += 1;
        match verdict {
            Verdict::WrongSignature => self.wrong_signature += 1,
            Verdict::TestFail => self.test_fail += 1,
            Verdict::UnexpectedTrap => self.unexpected_trap += 1,
            Verdict::Hang => self.hang += 1,
            Verdict::Undetected => self.undetected += 1,
            Verdict::SimError => self.sim_errors += 1,
        }
    }

    /// The verdict distribution in the observability layer's type.
    pub fn mix(&self) -> sbst_obs::VerdictMix {
        sbst_obs::VerdictMix {
            wrong_signature: self.wrong_signature as u64,
            test_fail: self.test_fail as u64,
            unexpected_trap: self.unexpected_trap as u64,
            hang: self.hang as u64,
            undetected: self.undetected as u64,
            sim_error: self.sim_errors as u64,
        }
    }

    /// Rebuilds the aggregate from per-fault records.
    pub fn from_records(records: &[(FaultSite, Verdict)]) -> CampaignResult {
        let mut result = CampaignResult::default();
        for &(_, v) in records {
            result.record(v);
        }
        result
    }
}

impl std::fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} detected ({:.2}%): sig {}, fail {}, trap {}, hang {}",
            self.detected(),
            self.total,
            self.coverage(),
            self.wrong_signature,
            self.test_fail,
            self.unexpected_trap,
            self.hang
        )?;
        if self.sim_errors != 0 {
            write!(f, ", sim-errors {}", self.sim_errors)?;
        }
        Ok(())
    }
}

/// Resolves a requested thread count (0 = available parallelism).
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// The core engine: grades `sites[i]` for every `i` where `pending`
/// holds `None`, writing verdicts in place and appending crash reports
/// to `errors`. Panics inside `grader.grade` become
/// [`Verdict::SimError`]; worker join failures become site-less
/// [`CampaignError`]s. `on_done` receives a snapshot of the slots
/// cloned under the lock that published the verdict — a consistent
/// state of the campaign at some publication point — but runs *outside*
/// it, so a slow observer (checkpoint serialization, file I/O) never
/// serializes the grading workers. Observers must therefore tolerate
/// snapshots arriving out of order: two workers can publish a, then b,
/// yet deliver b's snapshot first (the checkpoint writer handles this
/// with a monotonic done-count guard).
pub(crate) fn grade_pending(
    grader: &dyn FaultGrader,
    sites: &[FaultSite],
    pending: &Mutex<Vec<Option<Verdict>>>,
    errors: &Mutex<Vec<CampaignError>>,
    threads: usize,
    on_done: &(dyn Fn(&[Option<Verdict>]) + Sync),
) {
    let todo: Vec<usize> = {
        let slots = pending.lock().expect("verdict slots");
        assert_eq!(slots.len(), sites.len(), "slot/site length mismatch");
        slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.is_none().then_some(i))
            .collect()
    };
    if todo.is_empty() {
        return;
    }
    let next = AtomicUsize::new(0);
    let threads = resolve_threads(threads).min(todo.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let next = &next;
            let todo = &todo;
            handles.push(scope.spawn(move || loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = todo.get(t) else { break };
                let site = sites[i];
                let verdict = match catch_unwind(AssertUnwindSafe(|| grader.grade(site))) {
                    Ok(v) => v,
                    Err(payload) => {
                        errors.lock().expect("error log").push(CampaignError {
                            site: Some(site),
                            index: i,
                            message: panic_message(payload),
                        });
                        Verdict::SimError
                    }
                };
                let snapshot = {
                    let mut slots = pending.lock().expect("verdict slots");
                    slots[i] = Some(verdict);
                    slots.clone()
                };
                on_done(&snapshot);
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                // A panic that escaped the per-fault isolation (e.g. in
                // the engine itself): record it instead of aborting the
                // whole campaign.
                errors.lock().expect("error log").push(CampaignError {
                    site: None,
                    index: usize::MAX,
                    message: panic_message(payload),
                });
            }
        }
    });
}

/// Detailed campaign against any [`FaultGrader`]: per-fault verdicts in
/// fault-list order plus every recorded simulation crash.
pub fn run_campaign_graded(
    grader: &dyn FaultGrader,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>, Vec<CampaignError>) {
    let sites = faults.sites();
    let pending = Mutex::new(vec![None::<Verdict>; sites.len()]);
    let errors = Mutex::new(Vec::new());
    grade_pending(grader, sites, &pending, &errors, threads, &|_| {});
    let records: Vec<(FaultSite, Verdict)> = sites
        .iter()
        .zip(pending.into_inner().expect("verdict slots"))
        .map(|(&s, v)| (s, v.expect("every fault graded")))
        .collect();
    (
        CampaignResult::from_records(&records),
        records,
        errors.into_inner().expect("error log"),
    )
}

/// Fault-simulates every fault of `faults` against `experiment`,
/// fanning out over `threads` worker threads (0 = available
/// parallelism). Each fault is an independent full-SoC simulation
/// sharing the frozen Flash image. A crashing simulation is recorded as
/// [`Verdict::SimError`] rather than aborting the campaign.
pub fn run_campaign(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> CampaignResult {
    let grader = ExperimentGrader { experiment, golden };
    run_campaign_graded(&grader, faults, threads).0
}

/// Like [`run_campaign`] but returns the per-fault verdicts (in fault-list
/// order) alongside the aggregate — for diagnosis, dashboards, or the
/// union-coverage analyses of split plans.
pub fn run_campaign_detailed(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>) {
    let grader = ExperimentGrader { experiment, golden };
    let (result, records, _) = run_campaign_graded(&grader, faults, threads);
    (result, records)
}

/// [`run_campaign`] through the warm-start fast path: the golden-prefix
/// snapshot is captured once, then every fault clones it and simulates
/// only the tail with early-verdict exit. Verdict-equivalent to the
/// cold path (asserted over full collapsed fault lists by the
/// warm-start test suite), several times faster on hang-heavy lists.
pub fn run_campaign_warm(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> CampaignResult {
    run_campaign_warm_detailed(experiment, golden, faults, threads).0
}

/// Like [`run_campaign_warm`] but returns the per-fault verdicts (in
/// fault-list order) alongside the aggregate.
pub fn run_campaign_warm_detailed(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>) {
    let snapshot = experiment.snapshot(golden);
    let grader = WarmExperimentGrader { experiment, golden, snapshot: &snapshot };
    let (result, records, _) = run_campaign_graded(&grader, faults, threads);
    (result, records)
}

/// Buckets per-fault verdicts by element category — the diagnostic view
/// of where a routine's coverage holes are.
///
/// Returns `(category name, detected, total)` sorted by category name.
pub fn summarize_by_category(
    records: &[(FaultSite, Verdict)],
) -> Vec<(&'static str, usize, usize)> {
    use sbst_fault::Element;
    fn category(e: &Element) -> &'static str {
        match e {
            Element::MuxDataIn { .. } => "mux data input",
            Element::MuxSelStem { .. } => "mux select stem",
            Element::MuxSelBranch { .. } => "mux select branch",
            Element::MuxAndOut { .. } => "mux AND output",
            Element::MuxOrOut { .. } => "mux OR output",
            Element::MuxOrNode { .. } => "mux OR-chain node",
            Element::MuxPathDelay { .. } => "mux path delay",
            Element::CmpXnorOut { .. } => "comparator XNOR",
            Element::CmpChainNode { .. } => "comparator chain",
            Element::CmpValidIn => "comparator valid",
            Element::CmpOut => "comparator output",
            Element::StallLine { .. } => "stall line",
            Element::SelEncLine { .. } => "select encoder",
            Element::PendLatchQ { .. } => "ICU pending latch",
            Element::PendSetLine { .. } => "ICU pending set",
            Element::CauseMapLine { .. } => "ICU cause map",
            Element::CauseRegBit { .. } => "ICU cause register",
            Element::MaskBit { .. } => "ICU mask bit",
            Element::RecognizeLine => "ICU recognize line",
            Element::EpcBit { .. } => "ICU EPC capture",
            Element::DepthBit { .. } => "ICU depth counter",
        }
    }
    let mut buckets: std::collections::BTreeMap<&'static str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for (site, verdict) in records {
        let entry = buckets.entry(category(&site.element)).or_insert((0, 0));
        entry.1 += 1;
        if verdict.is_detected() {
            entry.0 += 1;
        }
    }
    buckets.into_iter().map(|(k, (d, t))| (k, d, t)).collect()
}

/// Runs a campaign over the *collapsed* fault universe and reports
/// coverage against the uncollapsed totals — the way commercial fault
/// simulators spend their cycles. Typically 30–40 % fewer simulations
/// for identical coverage (collapsing preserves verdicts; asserted by
/// the test suite).
pub fn run_campaign_collapsed(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> CampaignResult {
    let collapsed = sbst_fault::collapse(faults);
    let (_, records) =
        run_campaign_detailed(experiment, golden, collapsed.representatives(), threads);
    let mut result = CampaignResult::default();
    for (i, (_, verdict)) in records.iter().enumerate() {
        let n = collapsed.class_size(i);
        result.total += n;
        match verdict {
            Verdict::WrongSignature => result.wrong_signature += n,
            Verdict::TestFail => result.test_fail += n,
            Verdict::UnexpectedTrap => result.unexpected_trap += n,
            Verdict::Hang => result.hang += n,
            Verdict::Undetected => result.undetected += n,
            Verdict::SimError => result.sim_errors += n,
        }
    }
    result
}
