//! The parallel fault-simulation engine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sbst_fault::{FaultList, FaultSite, Verdict};

use crate::experiment::{Experiment, Observation};

/// Aggregated result of fault-simulating one fault list against one
/// experiment.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CampaignResult {
    /// Faults simulated.
    pub total: usize,
    /// Detected via signature mismatch.
    pub wrong_signature: usize,
    /// Detected via the routine's own FAIL status.
    pub test_fail: usize,
    /// Detected via an unexpected trap.
    pub unexpected_trap: usize,
    /// Detected via the watchdog (hang).
    pub hang: usize,
    /// Not detected.
    pub undetected: usize,
}

impl CampaignResult {
    /// Total detections.
    pub fn detected(&self) -> usize {
        self.total - self.undetected
    }

    /// Fault coverage in percent.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.detected() as f64 / self.total as f64
    }

    fn record(&mut self, verdict: Verdict) {
        self.total += 1;
        match verdict {
            Verdict::WrongSignature => self.wrong_signature += 1,
            Verdict::TestFail => self.test_fail += 1,
            Verdict::UnexpectedTrap => self.unexpected_trap += 1,
            Verdict::Hang => self.hang += 1,
            Verdict::Undetected => self.undetected += 1,
        }
    }

    fn merge(&mut self, other: &CampaignResult) {
        self.total += other.total;
        self.wrong_signature += other.wrong_signature;
        self.test_fail += other.test_fail;
        self.unexpected_trap += other.unexpected_trap;
        self.hang += other.hang;
        self.undetected += other.undetected;
    }
}

impl std::fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} detected ({:.2}%): sig {}, fail {}, trap {}, hang {}",
            self.detected(),
            self.total,
            self.coverage(),
            self.wrong_signature,
            self.test_fail,
            self.unexpected_trap,
            self.hang
        )
    }
}

/// Fault-simulates every fault of `faults` against `experiment`,
/// fanning out over `threads` worker threads (0 = available
/// parallelism). Each fault is an independent full-SoC simulation
/// sharing the frozen Flash image.
pub fn run_campaign(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> CampaignResult {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let sites = faults.sites();
    if sites.is_empty() {
        return CampaignResult::default();
    }
    let next = AtomicUsize::new(0);
    let mut result = CampaignResult::default();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(sites.len()) {
            let next = &next;
            handles.push(scope.spawn(move |_| {
                let mut local = CampaignResult::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&site) = sites.get(i) else { break };
                    local.record(experiment.test_fault(golden, site));
                }
                local
            }));
        }
        for h in handles {
            result.merge(&h.join().expect("fault-sim worker panicked"));
        }
    })
    .expect("crossbeam scope");
    result
}


/// Like [`run_campaign`] but returns the per-fault verdicts (in fault-list
/// order) alongside the aggregate — for diagnosis, dashboards, or the
/// union-coverage analyses of split plans.
pub fn run_campaign_detailed(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> (CampaignResult, Vec<(FaultSite, Verdict)>) {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let sites = faults.sites();
    let records = Mutex::new(vec![None::<Verdict>; sites.len()]);
    if !sites.is_empty() {
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(sites.len()) {
                let next = &next;
                let records = &records;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&site) = sites.get(i) else { break };
                    let verdict = experiment.test_fault(golden, site);
                    records.lock().expect("records lock")[i] = Some(verdict);
                });
            }
        })
        .expect("crossbeam scope");
    }
    let verdicts: Vec<(FaultSite, Verdict)> = sites
        .iter()
        .zip(records.into_inner().expect("records lock"))
        .map(|(&s, v)| (s, v.expect("every fault graded")))
        .collect();
    let mut result = CampaignResult::default();
    for &(_, v) in &verdicts {
        result.record(v);
    }
    (result, verdicts)
}


/// Buckets per-fault verdicts by element category — the diagnostic view
/// of where a routine's coverage holes are.
///
/// Returns `(category name, detected, total)` sorted by category name.
pub fn summarize_by_category(
    records: &[(FaultSite, Verdict)],
) -> Vec<(&'static str, usize, usize)> {
    use sbst_fault::Element;
    fn category(e: &Element) -> &'static str {
        match e {
            Element::MuxDataIn { .. } => "mux data input",
            Element::MuxSelStem { .. } => "mux select stem",
            Element::MuxSelBranch { .. } => "mux select branch",
            Element::MuxAndOut { .. } => "mux AND output",
            Element::MuxOrOut { .. } => "mux OR output",
            Element::MuxOrNode { .. } => "mux OR-chain node",
            Element::MuxPathDelay { .. } => "mux path delay",
            Element::CmpXnorOut { .. } => "comparator XNOR",
            Element::CmpChainNode { .. } => "comparator chain",
            Element::CmpValidIn => "comparator valid",
            Element::CmpOut => "comparator output",
            Element::StallLine { .. } => "stall line",
            Element::SelEncLine { .. } => "select encoder",
            Element::PendLatchQ { .. } => "ICU pending latch",
            Element::PendSetLine { .. } => "ICU pending set",
            Element::CauseMapLine { .. } => "ICU cause map",
            Element::CauseRegBit { .. } => "ICU cause register",
            Element::MaskBit { .. } => "ICU mask bit",
            Element::RecognizeLine => "ICU recognize line",
            Element::EpcBit { .. } => "ICU EPC capture",
            Element::DepthBit { .. } => "ICU depth counter",
        }
    }
    let mut buckets: std::collections::BTreeMap<&'static str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for (site, verdict) in records {
        let entry = buckets.entry(category(&site.element)).or_insert((0, 0));
        entry.1 += 1;
        if verdict.is_detected() {
            entry.0 += 1;
        }
    }
    buckets.into_iter().map(|(k, (d, t))| (k, d, t)).collect()
}


/// Runs a campaign over the *collapsed* fault universe and reports
/// coverage against the uncollapsed totals — the way commercial fault
/// simulators spend their cycles. Typically 30–40 % fewer simulations
/// for identical coverage (collapsing preserves verdicts; asserted by
/// the test suite).
pub fn run_campaign_collapsed(
    experiment: &Experiment,
    golden: &Observation,
    faults: &FaultList,
    threads: usize,
) -> CampaignResult {
    let collapsed = sbst_fault::collapse(faults);
    let (_, records) =
        run_campaign_detailed(experiment, golden, collapsed.representatives(), threads);
    let mut result = CampaignResult::default();
    for (i, (_, verdict)) in records.iter().enumerate() {
        let n = collapsed.class_size(i);
        result.total += n;
        match verdict {
            Verdict::WrongSignature => result.wrong_signature += n,
            Verdict::TestFail => result.test_fail += n,
            Verdict::UnexpectedTrap => result.unexpected_trap += n,
            Verdict::Hang => result.hang += n,
            Verdict::Undetected => result.undetected += n,
        }
    }
    result
}
