//! Campaign-level integration tests: the fault-simulation engine and the
//! table shapes at miniature effort.

use sbst_campaign::{routines_for, run_campaign, ExecStyle, Experiment};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::{Element, FaultPlane, FaultSite, Polarity, Unit, Verdict};
use sbst_soc::Scenario;

fn cached_exp(kind: CoreKind, unit: Unit) -> Experiment {
    let factory = routines_for(unit);
    Experiment::assemble(
        &*factory,
        kind,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles")
}

#[test]
fn golden_run_is_reproducible() {
    let exp = cached_exp(CoreKind::A, Unit::Forwarding);
    let g1 = exp.golden();
    let g2 = exp.golden();
    assert_eq!(g1, g2, "same experiment, same observation");
    assert!(g1.outcome.is_clean());
    assert_ne!(g1.signature, 0);
}

#[test]
fn known_fault_is_detected_with_the_right_verdict() {
    let exp = cached_exp(CoreKind::A, Unit::Forwarding);
    let golden = exp.golden();
    // A stuck output bit on the slot-0 operand-A mux corrupts forwarded
    // values AND load addresses: detected either by the signature or by
    // an unaligned-access trap.
    let site = FaultSite {
        unit: Unit::Forwarding,
        instance: 0,
        element: Element::MuxOrOut { bit: 0 },
        polarity: Polarity::StuckAt1,
    };
    let verdict = exp.test_fault(&golden, site);
    assert!(verdict.is_detected(), "{verdict}");
    // A stuck data bit on the EX/MEM *forwarding input* of the slot-0
    // operand-B mux only corrupts forwarded computation values (control
    // flow reads the register-file input): the detection must come from
    // the signature comparison.
    let site = FaultSite {
        unit: Unit::Forwarding,
        instance: 1,
        element: Element::MuxDataIn { src: sbst_cpu::SRC_EXMEM_P0 as u8, bit: 12 },
        polarity: Polarity::StuckAt1,
    };
    assert_eq!(exp.test_fault(&golden, site), Verdict::WrongSignature);
}

#[test]
fn permanent_stall_fault_hangs_and_is_detected() {
    let exp = cached_exp(CoreKind::A, Unit::Hdcu);
    let golden = exp.golden();
    let site = FaultSite {
        unit: Unit::Hdcu,
        instance: sbst_cpu::HDCU_CTRL,
        element: Element::StallLine { line: 4 },
        polarity: Polarity::StuckAt1,
    };
    assert_eq!(exp.test_fault(&golden, site), Verdict::Hang);
}

#[test]
fn fault_free_plane_is_undetected() {
    let exp = cached_exp(CoreKind::A, Unit::Icu);
    let golden = exp.golden();
    let faulty = exp.run(FaultPlane::fault_free());
    assert_eq!(Experiment::classify(&golden, &faulty), Verdict::Undetected);
}

#[test]
fn campaign_aggregates_and_parallelism_matches_serial() {
    let exp = cached_exp(CoreKind::A, Unit::Icu);
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, Unit::Icu).sample(12);
    let serial = run_campaign(&exp, &golden, &faults, 1);
    let parallel = run_campaign(&exp, &golden, &faults, 4);
    assert_eq!(serial, parallel, "verdicts are order-independent");
    assert_eq!(serial.total, faults.len());
    assert!(serial.detected() > 0, "{serial}");
    assert!(serial.undetected > 0, "some faults must stay masked: {serial}");
}

#[test]
fn cached_coverage_beats_single_core_uncached() {
    // The Table III headline at miniature scale.
    let kind = CoreKind::A;
    let faults = unit_fault_list(kind, Unit::Hdcu).sample(10);
    let factory = routines_for(Unit::Hdcu);
    let single = Experiment::assemble(
        &*factory,
        kind,
        ExecStyle::LegacyUncached,
        &Scenario::single_core(),
    )
    .expect("single");
    let golden = single.golden();
    let fc_single = run_campaign(&single, &golden, &faults, 0).coverage();
    let multi = cached_exp(kind, Unit::Hdcu);
    let golden = multi.golden();
    let fc_multi = run_campaign(&multi, &golden, &faults, 0).coverage();
    assert!(
        fc_multi > fc_single,
        "cache-wrapped multi-core FC ({fc_multi:.1}) must exceed \
         single-core-no-cache FC ({fc_single:.1})"
    );
}

#[test]
fn uncached_coverage_varies_with_the_scenario() {
    // The Table II min-max mechanism at miniature scale.
    let kind = CoreKind::A;
    let faults = unit_fault_list(kind, Unit::Forwarding).sample(16);
    let factory = routines_for(Unit::Forwarding);
    let mut coverages = Vec::new();
    for seed in 0..4 {
        let scenario = Scenario {
            active_cores: 3,
            skew_seed: seed,
            ..Scenario::single_core()
        };
        let exp = Experiment::assemble(&*factory, kind, ExecStyle::LegacyUncached, &scenario)
            .expect("uncached");
        let golden = exp.golden();
        coverages.push(run_campaign(&exp, &golden, &faults, 0).coverage());
    }
    let min = coverages.iter().cloned().fold(f64::MAX, f64::min);
    let max = coverages.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max > min,
        "uncached coverage must oscillate across scenarios: {coverages:?}"
    );
}

#[test]
fn table4_shape() {
    let rows = sbst_campaign::tables::table4();
    assert_eq!(rows[0].approach, "TCM-based");
    assert_eq!(rows[1].approach, "Cache-based");
    assert!(rows[0].overhead_bytes > 0, "TCM reserves memory");
    assert_eq!(rows[1].overhead_bytes, 0, "cache-based is footprint-free");
    assert!(
        rows[1].cycles > rows[0].cycles,
        "cache-based pays extra cycles: {} vs {}",
        rows[1].cycles,
        rows[0].cycles
    );
    let ratio = rows[1].cycles as f64 / rows[0].cycles as f64;
    assert!(ratio < 2.0, "but within a small factor, got {ratio:.2}");
}

#[test]
fn table1_stalls_grow_superlinearly() {
    let effort = sbst_campaign::tables::Effort {
        max_faults: 1,
        sweep_scenarios: 1,
        seeds: 1,
        threads: 0,
    };
    let rows = sbst_campaign::tables::table1(&effort);
    assert_eq!(rows.len(), 3);
    assert!(rows[1].if_stalls > 2 * rows[0].if_stalls, "{rows:?}");
    assert!(rows[2].if_stalls > rows[1].if_stalls, "{rows:?}");
    for r in &rows {
        assert!(r.if_stalls > r.mem_stalls, "IF stalls dominate: {rows:?}");
    }
}

#[test]
fn ablation_loading_loop_is_what_buys_determinism() {
    use sbst_campaign::ablation::{ablate, Variant};
    let effort = sbst_campaign::tables::Effort {
        max_faults: 1, // determinism probing only
        sweep_scenarios: 1,
        seeds: 3,
        threads: 0,
    };
    let rows = ablate(CoreKind::A, &effort);
    let by = |v: Variant| rows.iter().find(|r| r.variant == v).expect("variant present");
    assert!(by(Variant::Full).deterministic);
    assert!(by(Variant::ThreeIterations).deterministic);
    assert!(
        !by(Variant::NoLoadingLoop).deterministic,
        "without the loading loop the execution is bus-exposed"
    );
    assert!(!by(Variant::Uncached).deterministic);
    assert!(
        by(Variant::ThreeIterations).cycles > by(Variant::Full).cycles,
        "the third iteration only costs time"
    );
}

#[test]
fn split_plan_preserves_union_coverage() {
    // Paper §III.2.2: splitting must not compromise coverage.
    let kind = CoreKind::A;
    let faults = unit_fault_list(kind, Unit::Forwarding).sample(96);
    let cmp = sbst_campaign::split::split_union_coverage(kind, &faults, 2048, 0)
        .expect("split comparison");
    assert!(cmp.parts >= 2);
    assert!(
        cmp.split_coverage >= cmp.whole_coverage - 1e-9,
        "union of parts ({:.2}%) must reach the whole routine ({:.2}%)",
        cmp.split_coverage,
        cmp.whole_coverage
    );
}

#[test]
fn every_major_fault_category_is_detectable() {
    // Guards against "dead" fault categories: for each structurally
    // important element class, at least one sampled site must be
    // detected by the unit's own routine under the cached wrapper.
    use sbst_fault::Element;
    type Category = (Unit, fn(&Element) -> bool, &'static str);
    let categories: [Category; 10] = [
        (Unit::Forwarding, |e| matches!(e, Element::MuxDataIn { .. }), "MuxDataIn"),
        (Unit::Forwarding, |e| matches!(e, Element::MuxSelStem { .. }), "MuxSelStem"),
        (Unit::Forwarding, |e| matches!(e, Element::MuxAndOut { .. }), "MuxAndOut"),
        (Unit::Forwarding, |e| matches!(e, Element::MuxOrOut { .. }), "MuxOrOut"),
        (Unit::Hdcu, |e| matches!(e, Element::CmpOut), "CmpOut"),
        (Unit::Hdcu, |e| matches!(e, Element::SelEncLine { .. }), "SelEncLine"),
        (Unit::Icu, |e| matches!(e, Element::PendSetLine { .. }), "PendSetLine"),
        (Unit::Icu, |e| matches!(e, Element::RecognizeLine), "RecognizeLine"),
        (Unit::Icu, |e| matches!(e, Element::EpcBit { .. }), "EpcBit"),
        (Unit::Icu, |e| matches!(e, Element::DepthBit { .. }), "DepthBit"),
    ];
    for (unit, matcher, name) in categories {
        let exp = cached_exp(CoreKind::A, unit);
        let golden = exp.golden();
        let sites: Vec<_> = unit_fault_list(CoreKind::A, unit)
            .iter()
            .filter(|s| matcher(&s.element))
            .copied()
            .collect();
        assert!(!sites.is_empty(), "{name}: category not enumerated");
        let detected = sites
            .iter()
            .step_by((sites.len() / 6).max(1))
            .any(|&site| exp.test_fault(&golden, site).is_detected());
        assert!(detected, "{name}: no sampled site detected — dead category");
    }
}

#[test]
fn detailed_campaign_matches_the_aggregate() {
    use sbst_campaign::run_campaign_detailed;
    let exp = cached_exp(CoreKind::A, Unit::Icu);
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, Unit::Icu).sample(10);
    let aggregate = run_campaign(&exp, &golden, &faults, 0);
    let (agg2, records) = run_campaign_detailed(&exp, &golden, &faults, 0);
    assert_eq!(aggregate, agg2);
    assert_eq!(records.len(), faults.len());
    let detected = records.iter().filter(|(_, v)| v.is_detected()).count();
    assert_eq!(detected, aggregate.detected());
    // Order matches the fault list.
    for ((site, _), expected) in records.iter().zip(faults.iter()) {
        assert_eq!(site, expected);
    }
}

#[test]
fn effort_sampling_keeps_both_polarities() {
    use sbst_campaign::tables::Effort;
    use sbst_fault::Polarity;
    // Fault lists enumerate polarities adjacently; the sampler must not
    // collapse onto one polarity (a stride-parity artifact).
    let list = unit_fault_list(CoreKind::A, Unit::Hdcu);
    for max_faults in [10, 50, 100, 127, 250] {
        let effort = Effort { max_faults, sweep_scenarios: 1, seeds: 1, threads: 1 };
        let sample = effort.sample(&list);
        assert!(sample.len() <= max_faults + max_faults / 2, "budget respected-ish");
        let sa0 = sample.iter().filter(|s| s.polarity == Polarity::StuckAt0).count();
        let sa1 = sample.len() - sa0;
        assert!(sa0 > 0 && sa1 > 0, "max_faults={max_faults}: sa0={sa0} sa1={sa1}");
    }
}

#[test]
fn undersized_icache_splits_and_preserves_determinism_and_coverage() {
    use sbst_campaign::ExperimentConfig;
    use sbst_mem::{CacheConfig, WritePolicy};
    // Paper §III.2.2 at system level: with a 2 KiB I$ the forwarding
    // routine cannot fit; the experiment splits it and the method still
    // yields a deterministic signature and the same coverage as at 8 KiB.
    let kind = CoreKind::A;
    let factory = routines_for(Unit::Forwarding);
    let faults = unit_fault_list(kind, Unit::Forwarding).sample(45);
    let fc_at = |size_bytes: u32| {
        let icache = CacheConfig {
            size_bytes,
            ways: 2,
            line_bytes: 32,
            policy: WritePolicy::WriteAllocate,
        };
        let mut sigs = Vec::new();
        let mut fc = 0.0;
        for seed in 0..2 {
            let config = ExperimentConfig {
                icache,
                ..ExperimentConfig::new(
                    kind,
                    ExecStyle::CacheWrapped,
                    Scenario { active_cores: 3, skew_seed: seed, ..Scenario::single_core() },
                )
            };
            let exp =
                Experiment::assemble_config(&*factory, &config).expect("assembles");
            let golden = exp.golden();
            sigs.push(golden.signature);
            if seed == 0 {
                fc = run_campaign(&exp, &golden, &faults, 0).coverage();
            }
        }
        assert_eq!(sigs[0], sigs[1], "deterministic at {size_bytes} B");
        fc
    };
    let small = fc_at(2 * 1024);
    let paper = fc_at(8 * 1024);
    assert!(
        (small - paper).abs() < 1e-9,
        "splitting must not change coverage: {small:.2} vs {paper:.2}"
    );
}

#[test]
fn fault_collapsing_preserves_campaign_verdicts() {
    use sbst_fault::collapse;
    // For a sample of equivalence classes with >1 member, every member
    // must get the same verdict as its representative in a real
    // cache-wrapped campaign — the semantic contract of collapsing.
    let exp = cached_exp(CoreKind::A, Unit::Forwarding);
    let golden = exp.golden();
    let list = unit_fault_list(CoreKind::A, Unit::Forwarding);
    let collapsed = collapse(&list);
    assert!(
        collapsed.classes() < list.len(),
        "collapsing must reduce the universe: {} -> {}",
        list.len(),
        collapsed.classes()
    );
    // Pick a handful of multi-member classes spread over the list.
    let mut checked = 0;
    for (i, rep) in collapsed.representatives().iter().enumerate().step_by(97) {
        if collapsed.class_size(i) < 2 {
            continue;
        }
        let rep_verdict = exp.test_fault(&golden, *rep);
        // Find one member that maps to this class (other than the rep).
        let member = list.iter().find(|s| {
            **s != *rep && {
                let c = collapse(&sbst_fault::FaultList::from_sites(vec![**s]));
                c.representatives().sites()[0] == *rep
            }
        });
        if let Some(&member) = member {
            assert_eq!(
                exp.test_fault(&golden, member),
                rep_verdict,
                "class member {member} disagrees with representative {rep}"
            );
            checked += 1;
        }
        if checked >= 4 {
            break;
        }
    }
    assert!(checked >= 2, "too few multi-member classes sampled");
}

#[test]
fn collapsed_campaign_matches_full_coverage() {
    use sbst_campaign::run_campaign_collapsed;
    let exp = cached_exp(CoreKind::A, Unit::Forwarding);
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, Unit::Forwarding).sample(31);
    let full = run_campaign(&exp, &golden, &faults, 0);
    let collapsed = run_campaign_collapsed(&exp, &golden, &faults, 0);
    assert_eq!(collapsed.total, full.total);
    assert!(
        (collapsed.coverage() - full.coverage()).abs() < 1e-9,
        "collapsing must not change coverage: {:.3} vs {:.3}",
        collapsed.coverage(),
        full.coverage()
    );
}

#[test]
fn any_scenario_assembles_and_runs_clean() {
    // Robustness across the whole scenario space (sampled): assembling
    // and golden-running never fails for any axis combination.
    use sbst_soc::{Alignment, CodePosition};
    let factory = routines_for(Unit::Icu);
    for (i, scenario) in Scenario::table2_sweep(3).into_iter().step_by(11).enumerate() {
        let style = if i % 2 == 0 { ExecStyle::CacheWrapped } else { ExecStyle::LegacyUncached };
        let exp = Experiment::assemble(&*factory, CoreKind::B, style, &scenario)
            .unwrap_or_else(|e| panic!("{scenario} ({style:?}): {e}"));
        let golden = exp.golden();
        assert!(golden.outcome.is_clean(), "{scenario} ({style:?}): {:?}", golden.outcome);
    }
    // The extreme corners explicitly.
    for position in CodePosition::ALL {
        for alignment in Alignment::ALL {
            let scenario = Scenario { active_cores: 3, position, alignment, skew_seed: 9 };
            let exp = Experiment::assemble(
                &*factory,
                CoreKind::C,
                ExecStyle::CacheWrapped,
                &scenario,
            )
            .unwrap_or_else(|e| panic!("{scenario}: {e}"));
            assert!(exp.golden().outcome.is_clean(), "{scenario}");
        }
    }
}
