//! The campaign fast path's correctness gate: warm-start grading
//! (golden-prefix snapshot + early-verdict exit + golden-calibrated
//! hang budget) must produce per-fault verdicts identical to the
//! cold-start path — over *full collapsed fault lists*, not samples,
//! including the ICU whose tick is the one faultable activity before
//! the snapshot point.

use sbst_campaign::{
    routines_for, run_campaign_detailed, run_campaign_warm_detailed, ExecStyle, Experiment,
};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::{collapse, Element, FaultPlane, FaultSite, Polarity, Unit, Verdict};
use sbst_soc::Scenario;

fn multicore_exp(kind: CoreKind, unit: Unit) -> Experiment {
    let factory = routines_for(unit);
    Experiment::assemble(
        &*factory,
        kind,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles")
}

type Records = Vec<(FaultSite, Verdict)>;

/// Cold and warm records over the full collapsed list of `unit`.
fn cold_and_warm(unit: Unit) -> (Records, Records) {
    let exp = multicore_exp(CoreKind::A, unit);
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, unit);
    let collapsed = collapse(&faults);
    let reps = collapsed.representatives();
    assert!(!reps.sites().is_empty());
    let (_, cold) = run_campaign_detailed(&exp, &golden, reps, 0);
    let (_, warm) = run_campaign_warm_detailed(&exp, &golden, reps, 0);
    (cold, warm)
}

/// The headline equivalence: every representative of the collapsed
/// forwarding-unit universe (the largest fault population) gets the
/// same verdict from the fast path as from a full from-reset run.
#[test]
fn warm_verdicts_match_cold_over_the_full_collapsed_forwarding_list() {
    let (cold, warm) = cold_and_warm(Unit::Forwarding);
    assert_eq!(cold, warm);
}

/// Same over the HDCU, whose stall-line faults are the hang-heavy
/// population — the one the tightened budget could misclassify.
#[test]
fn warm_verdicts_match_cold_over_the_full_collapsed_hdcu_list() {
    let (cold, warm) = cold_and_warm(Unit::Hdcu);
    assert_eq!(cold, warm);
}

/// Same over the ICU: its tick runs every cycle, so ICU faults are
/// live *before* the snapshot point in a cold run but only after it in
/// a warm run — the one place the two paths genuinely diverge in
/// mechanism, gated here to verdict equivalence.
#[test]
fn warm_verdicts_match_cold_over_the_full_collapsed_icu_list() {
    let (cold, warm) = cold_and_warm(Unit::Icu);
    assert_eq!(cold, warm);
}

/// The snapshot is a real prefix with a budget strictly tighter than
/// the cold watchdog, and a fault-free warm run reproduces the golden
/// observables while exiting no later than the full-SoC halt.
#[test]
fn snapshot_prefix_and_early_exit_shape() {
    let exp = multicore_exp(CoreKind::A, Unit::Forwarding);
    let golden = exp.golden();
    let snapshot = exp.snapshot(&golden);
    assert!(snapshot.cycle() > 0, "first issue cannot happen at cycle 0");
    assert!(snapshot.cycle() < golden.cycles);
    assert!(
        snapshot.budget() >= golden.cycles,
        "warm budget ({}) must cover at least the golden tail",
        snapshot.budget()
    );
    let warm = exp.run_warm(&snapshot, FaultPlane::fault_free());
    assert_eq!(Experiment::classify(&golden, &warm), Verdict::Undetected);
    assert_eq!(warm.signature, golden.signature);
    assert_eq!(warm.status, golden.status);
    assert!(
        warm.cycles < golden.cycles,
        "early exit at the core under test's halt ({}) must beat the \
         golden all-halt ({}) — the other cores run longer sequences",
        warm.cycles,
        golden.cycles
    );
}

/// A known permanent-stall fault grades as a hang through the warm
/// path, with the budget expiring at the exact absolute cycle the cold
/// watchdog would — the hang decision is the same deadline either way.
#[test]
fn warm_hang_verdict_expires_at_the_cold_cutoff() {
    let exp = multicore_exp(CoreKind::A, Unit::Hdcu);
    let golden = exp.golden();
    let snapshot = exp.snapshot(&golden);
    let site = FaultSite {
        unit: Unit::Hdcu,
        instance: sbst_cpu::HDCU_CTRL,
        element: Element::StallLine { line: 4 },
        polarity: Polarity::StuckAt1,
    };
    assert_eq!(exp.test_fault(&golden, site), Verdict::Hang);
    let warm = exp.run_warm(&snapshot, FaultPlane::armed(site));
    assert_eq!(Experiment::classify(&golden, &warm), Verdict::Hang);
    assert_eq!(
        warm.cycles,
        golden.cycles * 4 + 20_000,
        "a warm hang must run to the cold path's golden-calibrated cutoff"
    );
}
