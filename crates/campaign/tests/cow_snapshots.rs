//! Correctness gates for the copy-on-write SoC snapshot layer the
//! warm-start and PPSFP campaign paths are built on: a snapshot must be
//! a true immutable baseline (clones never write through to it, chains
//! of clones stay independent), and a COW clone must be behaviorally
//! indistinguishable from the deep copy it replaced.

use sbst_campaign::{routines_for, ExecStyle, Experiment};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::{FaultPlane, Unit};
use sbst_soc::{Scenario, Soc};
use sbst_stl::RESULT_SIG_OFF;

fn forwarding_exp() -> Experiment {
    let factory = routines_for(Unit::Forwarding);
    Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles")
}

/// Runs `soc` until the core under test halts (or `budget`), returning
/// the halt cycle and the mailbox signature word.
fn run_to_cut_halt(soc: &mut Soc, budget: u64, mailbox: u32) -> (u64, u32) {
    while soc.cycle() < budget && !soc.core(0).halted() {
        soc.step();
    }
    (soc.cycle(), soc.peek(mailbox + RESULT_SIG_OFF as u32))
}

/// The result mailbox of the core under test in campaign runs.
fn cut_mailbox() -> u32 {
    sbst_mem::SRAM_BASE + 0x40
}

/// Mutating a clone — by direct pokes and by running it to completion —
/// must leave the snapshot it was cloned from bit-identical: a later
/// clone of the same snapshot reproduces the exact same run.
#[test]
fn mutation_after_snapshot_leaves_the_snapshot_intact() {
    let exp = forwarding_exp();
    let golden = exp.golden();
    let snapshot = exp.snapshot(&golden);
    let mb = cut_mailbox();
    let sig_before = snapshot.soc().peek(mb + RESULT_SIG_OFF as u32);
    let cycle_before = snapshot.soc().cycle();

    // Clone 1: scribble directly over the mailbox and SRAM.
    let mut vandal = snapshot.soc().clone();
    vandal.poke(mb + RESULT_SIG_OFF as u32, 0xdead_beef);
    for i in 0..64 {
        vandal.poke(sbst_mem::SRAM_BASE + 4 * i, 0x5a5a_5a5a);
    }
    assert_eq!(
        snapshot.soc().peek(mb + RESULT_SIG_OFF as u32),
        sig_before,
        "a clone's pokes must not write through to the snapshot"
    );

    // Clone 2: run the whole tail to the core-under-test halt.
    let mut first = snapshot.soc().clone();
    let r1 = run_to_cut_halt(&mut first, snapshot.budget(), mb);
    assert_eq!(snapshot.soc().cycle(), cycle_before, "snapshot never advances");
    assert_eq!(snapshot.soc().peek(mb + RESULT_SIG_OFF as u32), sig_before);

    // Clone 3, taken *after* all that mutation, reproduces clone 2's
    // run exactly — the snapshot is still the pristine baseline.
    let mut second = snapshot.soc().clone();
    let r2 = run_to_cut_halt(&mut second, snapshot.budget(), mb);
    assert_eq!(r1, r2, "snapshot no longer reproduces the golden tail");
    assert_eq!(r1.1, golden.signature, "tail must land on the golden signature");
}

/// Chains of snapshots-of-snapshots: each generation can be advanced
/// and re-cloned without disturbing its ancestor, and a chained clone
/// is state-identical to a straight-line run of the same length.
#[test]
fn snapshot_of_snapshot_chains_stay_independent() {
    let exp = forwarding_exp();
    let golden = exp.golden();
    let snapshot = exp.snapshot(&golden);

    // Straight-line reference: one clone stepped 300 cycles.
    let mut straight = snapshot.soc().clone();
    for _ in 0..300 {
        straight.step();
    }

    // Chained: clone, step 100, clone *that*, step 100, clone again.
    let mut g1 = snapshot.soc().clone();
    for _ in 0..100 {
        g1.step();
    }
    let g1_cycle = g1.cycle();
    let mut g2 = g1.clone();
    for _ in 0..100 {
        g2.step();
    }
    assert_eq!(g1.cycle(), g1_cycle, "advancing g2 must not advance g1");
    let mut g3 = g2.clone();
    for _ in 0..100 {
        g3.step();
    }
    assert!(
        g3.loop_state_eq(&straight),
        "three chained 100-cycle generations must equal one 300-cycle run"
    );
    // Ancestors still re-runnable: g1 stepped 200 more equals both.
    for _ in 0..200 {
        g1.step();
    }
    assert!(g1.loop_state_eq(&g3), "mutated descendants corrupted their ancestor");
}

/// The COW-vs-deep-copy differential: a fault tail simulated on a COW
/// clone and on a fully `unshare()`d clone (the old deep-copy backing
/// behavior) must be cycle- and bit-identical — fault-free, with a
/// signature-corrupting fault, and with observer counters compared via
/// full state equality at the end.
#[test]
fn cow_clone_and_deep_clone_runs_are_indistinguishable() {
    let exp = forwarding_exp();
    let golden = exp.golden();
    let snapshot = exp.snapshot(&golden);
    let mb = cut_mailbox();

    let faults = unit_fault_list(CoreKind::A, Unit::Forwarding);
    let planes: Vec<FaultPlane> = std::iter::once(FaultPlane::fault_free())
        .chain(faults.sites().iter().step_by(97).take(6).map(|&s| FaultPlane::armed(s)))
        .collect();

    for plane in planes {
        let mut cow = snapshot.soc().clone();
        let mut deep = snapshot.soc().clone();
        deep.unshare();
        cow.core_mut(0).set_plane(plane);
        deep.core_mut(0).set_plane(plane);
        let rc = run_to_cut_halt(&mut cow, snapshot.budget(), mb);
        let rd = run_to_cut_halt(&mut deep, snapshot.budget(), mb);
        assert_eq!(rc, rd, "COW and deep-copy tails diverged under {plane:?}");
        assert!(
            cow.loop_state_eq(&deep),
            "final machine state differs between COW and deep copy under {plane:?}"
        );
    }
}

/// The warm graders themselves sit on clones of one shared snapshot;
/// grading many faults back-to-back (including hangs that exhaust the
/// budget) must leave the snapshot able to reproduce the golden
/// observation bit-for-bit.
#[test]
fn grading_through_the_snapshot_does_not_wear_it_out() {
    let exp = forwarding_exp();
    let golden = exp.golden();
    let snapshot = exp.snapshot(&golden);
    let faults = unit_fault_list(CoreKind::A, Unit::Forwarding).sample(400);
    for &site in faults.sites() {
        let _ = exp.test_fault_warm(&golden, &snapshot, site);
    }
    let clean = exp.run_warm(&snapshot, FaultPlane::fault_free());
    assert_eq!(clean.signature, golden.signature);
    assert_eq!(clean.status, golden.status);
}
