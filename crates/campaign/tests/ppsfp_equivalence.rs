//! The bit-parallel tier's correctness gate: PPSFP grading (packed
//! fault words riding one tapped golden tail, with serial fallback for
//! architecturally divergent lanes and the livelock short-circuit in
//! that fallback) must produce per-fault verdicts identical to the
//! serial warm path — over *full collapsed fault lists*, including the
//! HDCU/ICU populations that fall back wholesale, and over randomly
//! sampled mixed-unit lists.

use std::sync::OnceLock;

use proptest::prelude::*;
use sbst_campaign::{
    routines_for, run_campaign_ppsfp_detailed, run_campaign_warm_detailed, ExecStyle,
    Experiment, PpsfpStats,
};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::{collapse, FaultList, FaultSite, Unit, Verdict};
use sbst_soc::Scenario;

type Records = Vec<(FaultSite, Verdict)>;

fn multicore_exp(kind: CoreKind, unit: Unit) -> Experiment {
    let factory = routines_for(unit);
    Experiment::assemble(
        &*factory,
        kind,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("experiment assembles")
}

/// Serial-warm and PPSFP records over one list, plus the PPSFP split
/// statistics. The serial warm path is the reference the ISSUE pins
/// PPSFP against (itself pinned to cold-start runs by `warm_start.rs`).
fn warm_and_ppsfp(
    kind: CoreKind,
    unit: Unit,
    faults: &FaultList,
) -> (Records, Records, PpsfpStats) {
    let exp = multicore_exp(kind, unit);
    let golden = exp.golden();
    let (_, warm) = run_campaign_warm_detailed(&exp, &golden, faults, 0);
    let (result, ppsfp, stats) = run_campaign_ppsfp_detailed(&exp, &golden, faults, 0);
    assert_eq!(result.total, faults.len(), "every fault graded exactly once");
    assert_eq!(
        result.sim_errors, 0,
        "PPSFP grading must not crash on any fault of this list"
    );
    (warm, ppsfp, stats)
}

struct Fixture {
    reps: FaultList,
    warm: Records,
    ppsfp: Records,
    stats: PpsfpStats,
}

/// The headline fixture: the full collapsed forwarding-unit universe on
/// core kind A (the largest population and the only unit the ride
/// accelerates), shared between the equality and statistics tests.
fn forwarding_a() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let faults = unit_fault_list(CoreKind::A, Unit::Forwarding);
        let collapsed = collapse(&faults);
        let reps = collapsed.representatives().clone();
        let (warm, ppsfp, stats) = warm_and_ppsfp(CoreKind::A, Unit::Forwarding, &reps);
        Fixture { reps, warm, ppsfp, stats }
    })
}

/// Every representative of the collapsed forwarding list gets the same
/// verdict from the bit-parallel ride (or its per-lane fallback) as
/// from the serial warm path — site by site, in list order.
#[test]
fn ppsfp_verdicts_match_warm_over_the_full_collapsed_forwarding_list() {
    let fx = forwarding_a();
    assert_eq!(fx.warm.len(), fx.ppsfp.len());
    for (w, p) in fx.warm.iter().zip(&fx.ppsfp) {
        assert_eq!(w, p, "verdict divergence at {:?}", w.0);
    }
}

/// The ride must actually carry most of the forwarding population —
/// otherwise the tier silently degenerated into the serial path and the
/// equivalence above proves nothing about the lane engine.
#[test]
fn forwarding_rides_the_golden_tail_for_most_lanes() {
    let fx = forwarding_a();
    let s = &fx.stats;
    assert!(s.ridden_words > 0, "no word rode the golden tail");
    assert_eq!(s.packed_faults, fx.reps.len(), "all-forwarding list packs entirely");
    assert!(
        s.fallback_rate < 0.5,
        "fallback rate {:.2} — the ride fell off on most lanes",
        s.fallback_rate
    );
    assert_eq!(
        s.fallback_faults,
        (s.fallback_rate * fx.reps.len() as f64).round() as usize,
        "fallback rate and count must agree"
    );
    assert!(s.pack_density > 0.0 && s.pack_density <= 1.0);
}

/// Same gate on core kind C: 64-bit datapath, wider mux words, ALU64
/// traffic through the forwarding network — the lane engine's width
/// handling and 64-bit pairing rules are exercised for real.
#[test]
fn ppsfp_matches_warm_on_the_64_bit_core() {
    let faults = unit_fault_list(CoreKind::C, Unit::Forwarding);
    let reps = collapse(&faults).representatives().clone();
    let (warm, ppsfp, stats) = warm_and_ppsfp(CoreKind::C, Unit::Forwarding, &reps);
    assert_eq!(warm, ppsfp);
    assert!(stats.ridden_words > 0);
}

/// And on core kind B (a different 32-bit netlist), over a sampled
/// sublist — the cross-kind smoke of the same invariant.
#[test]
fn ppsfp_matches_warm_on_core_kind_b() {
    let faults = unit_fault_list(CoreKind::B, Unit::Forwarding).sample(3);
    let (warm, ppsfp, _) = warm_and_ppsfp(CoreKind::B, Unit::Forwarding, &faults);
    assert_eq!(warm, ppsfp);
}

/// HDCU faults perturb stall timing — the ride cannot carry them, so
/// the whole population is graded by the serial fallback (with the
/// livelock short-circuit active: this is the hang-heavy list) and the
/// verdicts must still be bit-identical.
#[test]
fn hdcu_words_fall_back_wholesale_with_identical_verdicts() {
    let faults = unit_fault_list(CoreKind::A, Unit::Hdcu);
    let reps = collapse(&faults).representatives().clone();
    let (warm, ppsfp, stats) = warm_and_ppsfp(CoreKind::A, Unit::Hdcu, &reps);
    assert_eq!(warm, ppsfp);
    assert_eq!(stats.ridden_words, 0, "HDCU words must not ride");
    assert_eq!(stats.packed_faults, 0);
    assert_eq!(stats.fallback_faults, reps.len(), "every fault graded serially");
    assert_eq!(stats.fallback_rate, 1.0);
}

/// Same forced-fallback gate over the ICU list (trap recognition is
/// architectural by definition).
#[test]
fn icu_words_fall_back_wholesale_with_identical_verdicts() {
    let faults = unit_fault_list(CoreKind::A, Unit::Icu);
    let reps = collapse(&faults).representatives().clone();
    let (warm, ppsfp, stats) = warm_and_ppsfp(CoreKind::A, Unit::Icu, &reps);
    assert_eq!(warm, ppsfp);
    assert_eq!(stats.ridden_words, 0);
    assert_eq!(stats.fallback_rate, 1.0);
}

/// When every fault in a campaign falls back, the coverage arithmetic
/// must still count each fault exactly once: total, the verdict mix and
/// the fallback tally all agree with the list size, and the records
/// come back in list order with no duplicates.
#[test]
fn all_fallback_campaign_counts_every_fault_exactly_once() {
    let exp = multicore_exp(CoreKind::A, Unit::Hdcu);
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, Unit::Hdcu).sample(5);
    let (result, records, stats) =
        run_campaign_ppsfp_detailed(&exp, &golden, &faults, 0);
    assert_eq!(result.total, faults.len());
    assert_eq!(records.len(), faults.len());
    assert_eq!(stats.fallback_faults, faults.len());
    assert_eq!(
        result.wrong_signature
            + result.test_fail
            + result.unexpected_trap
            + result.hang
            + result.undetected
            + result.sim_errors,
        result.total,
        "verdict mix partitions the total"
    );
    for (rec, &site) in records.iter().zip(faults.sites()) {
        assert_eq!(rec.0, site, "records keep fault-list order");
    }
}

/// Packing edge cases at the campaign level: the empty list and the
/// single-fault list are graded without panicking and with exact
/// arithmetic (no phantom word, a one-lane word).
#[test]
fn empty_and_single_fault_lists_have_exact_arithmetic() {
    let exp = multicore_exp(CoreKind::A, Unit::Forwarding);
    let golden = exp.golden();

    let empty = FaultList::new();
    let (result, records, stats) = run_campaign_ppsfp_detailed(&exp, &golden, &empty, 0);
    assert_eq!(result.total, 0);
    assert!(records.is_empty());
    assert_eq!(stats, PpsfpStats::default());

    let universe = unit_fault_list(CoreKind::A, Unit::Forwarding);
    let one = FaultList::from_sites(vec![universe.sites()[0]]);
    assert_eq!(one.len(), 1);
    let (result, records, stats) = run_campaign_ppsfp_detailed(&exp, &golden, &one, 0);
    assert_eq!(result.total, 1);
    assert_eq!(records.len(), 1);
    assert_eq!(stats.words, 1, "a single fault packs into one single-lane word");
    // Packed lanes that later fall off are re-graded serially, so the
    // two tallies overlap; the exact-once guarantee is on the records.
    assert!(stats.fallback_faults <= 1);
    let (_, warm) = run_campaign_warm_detailed(&exp, &golden, &one, 0);
    assert_eq!(warm, records);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random sampled sublists of the collapsed forwarding universe
    /// (word packings the full-list test never forms: odd sizes,
    /// sparse instance mixes) grade identically to the serial path.
    #[test]
    fn sampled_sublists_grade_identically(seed in any::<u64>()) {
        let fx = forwarding_a();
        let exp = multicore_exp(CoreKind::A, Unit::Forwarding);
        let golden = exp.golden();
        // Deterministic pseudo-random subset from the proptest seed.
        let mut x = seed | 1;
        let sites: Vec<FaultSite> = fx
            .reps
            .sites()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_add(*i as u64)).is_multiple_of(11)
            })
            .map(|(_, &s)| s)
            .collect();
        let list = FaultList::from_sites(sites);
        let (_, ppsfp, _) = run_campaign_ppsfp_detailed(&exp, &golden, &list, 0);
        // The full-list fixture already holds the serial verdict of
        // every representative: compare against it site by site.
        for (site, verdict) in &ppsfp {
            let warm = fx
                .warm
                .iter()
                .find(|(s, _)| s == site)
                .expect("sampled site is a representative")
                .1;
            prop_assert_eq!(verdict, &warm, "divergence at {:?}", site);
        }
    }
}
