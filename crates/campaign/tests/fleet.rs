//! Fleet orchestrator robustness suite.
//!
//! The headline property: under seeded random worker failures (panics,
//! hangs, slowdowns, corrupted results) a fleet run **terminates**,
//! never deadlocks, every shard is explicitly accounted for, and the
//! merged verdict map is **bit-identical** to an uninterrupted serial
//! run on every completed shard. Asserted over 50 independent chaos
//! storms plus deterministic kill-and-resume and quarantine scenarios.

use std::time::Duration;

use sbst_campaign::fleet::{
    run_fleet, run_fleet_serial, shard_checkpoint_path, ChaosAction, EcuSpec, FailureKind,
    FleetConfig, FleetGrader, FleetPlan, ForcedFailure, LeasePolicy, ShardFate, WorkerChaos,
};
use sbst_campaign::{fingerprint, Checkpoint};
use sbst_fault::{Element, FaultList, FaultSite, Polarity, Unit, Verdict};

/// A pure, instant grader: the verdict is a hash of (ECU index, fault
/// site), so retried / stolen / resumed shards must reproduce it
/// exactly — any double-merge, misroute or corruption shows up as a
/// baseline mismatch.
struct HashGrader;

impl FleetGrader for HashGrader {
    fn grade(&self, ecu: usize, _spec: &EcuSpec, site: FaultSite) -> Verdict {
        let mut h = ecu as u64 ^ 0x9e37_79b9_7f4a_7c15;
        for b in format!("{site:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        match h % 5 {
            0 => Verdict::WrongSignature,
            1 => Verdict::TestFail,
            2 => Verdict::UnexpectedTrap,
            3 => Verdict::Hang,
            _ => Verdict::Undetected,
        }
    }
}

fn synthetic_list(n: u16) -> FaultList {
    (0..n)
        .map(|i| FaultSite {
            unit: Unit::Hdcu,
            instance: i,
            element: Element::CmpOut,
            polarity: if i % 2 == 0 { Polarity::StuckAt0 } else { Polarity::StuckAt1 },
        })
        .collect()
}

fn plan() -> FleetPlan {
    let ecus = EcuSpec::population(Unit::Hdcu);
    FleetPlan::build(ecus, vec![synthetic_list(24), synthetic_list(24), synthetic_list(24)], 7)
}

/// Checks the invariants every fleet run must satisfy, chaos or not:
/// full accounting (every shard Completed xor Quarantined, verdicts
/// present exactly for completed shards) and bit-identity of every
/// completed shard against the serial baseline.
fn assert_invariants(
    report: &sbst_campaign::fleet::FleetReport,
    baseline: &[Vec<Verdict>],
    seed: u64,
) {
    assert_eq!(report.fates.len(), baseline.len(), "seed {seed}: every shard accounted");
    let mut completed = 0u64;
    let mut quarantined = 0u64;
    for (i, fate) in report.fates.iter().enumerate() {
        match fate {
            ShardFate::Completed { .. } => {
                completed += 1;
                let merged = report.verdicts[i]
                    .as_ref()
                    .unwrap_or_else(|| panic!("seed {seed}: completed shard {i} has verdicts"));
                assert_eq!(
                    merged, &baseline[i],
                    "seed {seed}: shard {i} verdicts must be bit-identical to the serial run"
                );
            }
            ShardFate::Quarantined { .. } => {
                quarantined += 1;
                assert!(
                    report.verdicts[i].is_none(),
                    "seed {seed}: quarantined shard {i} must not leak partial verdicts"
                );
            }
        }
    }
    let c = report.telemetry.counters;
    assert_eq!(c.completed, completed, "seed {seed}: completed counter");
    assert_eq!(c.quarantined, quarantined, "seed {seed}: quarantined counter");
    assert_eq!(
        c.completed + c.quarantined,
        c.shards,
        "seed {seed}: every shard terminal"
    );
}

/// The headline property, over 50 independent chaos storms.
#[test]
fn chaos_storms_terminate_and_match_the_serial_baseline() {
    let plan = plan();
    let baseline = run_fleet_serial(&plan, &HashGrader);
    let mut injected = 0u64;
    let mut steals = 0u64;
    let mut retries = 0u64;
    for seed in 0..50 {
        let cfg = FleetConfig {
            workers: 4,
            policy: LeasePolicy {
                max_retries: 6,
                lease_timeout: Duration::from_millis(25),
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(8),
                seed,
            },
            chaos: WorkerChaos::storm(seed),
            checkpoint_dir: None,
            checkpoint_every: 4,
            poll: Duration::from_millis(1),
        };
        let report = run_fleet(&plan, &HashGrader, &cfg);
        assert_invariants(&report, &baseline, seed);
        let t = &report.telemetry;
        injected +=
            t.injected_panics + t.injected_hangs + t.injected_slowdowns + t.injected_corruptions;
        steals += t.counters.steals;
        retries += t.counters.retries;
    }
    // The storms must actually have stressed the machinery — a chaos
    // plane that never fires proves nothing.
    assert!(injected > 50, "chaos storms barely fired: {injected} injections over 50 runs");
    assert!(steals > 0, "no lease was ever stolen across 50 storms");
    assert!(retries > 0, "no shard was ever retried across 50 storms");
}

/// Without chaos the fleet is simply a parallel campaign: everything
/// completes first-try, nothing is stolen or retried.
#[test]
fn calm_fleet_completes_everything_first_try() {
    let plan = plan();
    let baseline = run_fleet_serial(&plan, &HashGrader);
    // Calm runs must assert zero steals, so the lease has to be far
    // above any scheduling hiccup a loaded test machine can produce.
    let cfg = FleetConfig {
        policy: LeasePolicy { lease_timeout: Duration::from_secs(60), ..LeasePolicy::fast(99) },
        ..FleetConfig::new(4, 99)
    };
    let report = run_fleet(&plan, &HashGrader, &cfg);
    assert_invariants(&report, &baseline, 99);
    assert!(report.is_complete());
    let c = report.telemetry.counters;
    assert_eq!(c.leases, c.shards, "one lease per shard");
    assert_eq!((c.retries, c.steals, c.late_results), (0, 0, 0));
    assert_eq!(report.telemetry.faults_graded, plan.total_faults() as u64);
    // Lease/done trace events for every shard.
    let leases = report.events.iter().filter(|e| e.kind.name() == "shard-lease").count();
    let dones = report.events.iter().filter(|e| e.kind.name() == "shard-done").count();
    assert_eq!((leases, dones), (plan.shard_count(), plan.shard_count()));
}

/// Kill-and-resume: a worker is killed (injected panic) at a random
/// fault index mid-shard; the retry restores the graded prefix from
/// the shard checkpoint and the merged verdicts are identical to the
/// uninterrupted baseline.
#[test]
fn killed_worker_resumes_from_checkpoint_with_identical_verdicts() {
    let plan = plan();
    let baseline = run_fleet_serial(&plan, &HashGrader);
    for seed in 0..8 {
        let dir = std::env::temp_dir().join(format!(
            "sbst-fleet-resume-{}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        // Kill one pseudo-random shard at a pseudo-random fault index.
        let victim = (seed as usize * 7 + 3) % plan.shard_count();
        let after = 1 + (seed as usize * 5) % (plan.shards[victim].len - 1);
        let mut chaos = WorkerChaos::off();
        chaos.forced.push(ForcedFailure {
            shard: victim,
            attempt: 1,
            action: ChaosAction::Panic { after },
        });
        let cfg = FleetConfig {
            workers: 3,
            policy: LeasePolicy {
                max_retries: 6,
                // Generous: no hangs are injected, so expiry is never
                // needed and a loaded CI machine cannot starve a lease.
                lease_timeout: Duration::from_secs(60),
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                seed,
            },
            chaos,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            poll: Duration::from_millis(1),
        };
        let report = run_fleet(&plan, &HashGrader, &cfg);
        assert_invariants(&report, &baseline, seed);
        assert!(report.is_complete(), "seed {seed}: one panic must not quarantine anything");
        let t = &report.telemetry;
        assert_eq!(t.injected_panics, 1, "seed {seed}: the forced panic fired");
        assert!(
            t.faults_restored >= after as u64,
            "seed {seed}: retry restored at least the {after} faults graded before the kill \
             (got {})",
            t.faults_restored
        );
        assert!(t.counters.resumes >= 1, "seed {seed}: resume counted");
        assert_eq!(t.counters.retries, 1, "seed {seed}: exactly one retry");
        match report.fates[victim] {
            ShardFate::Completed { attempts: 2, resumed_faults, .. } => {
                assert!(resumed_faults >= after as u32, "seed {seed}");
            }
            other => panic!("seed {seed}: victim shard fate {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A checkpoint written for the wrong ECU configuration is rejected on
/// load (counted, discarded) and the shard is re-graded from scratch —
/// verdicts still match the baseline.
#[test]
fn foreign_config_shard_checkpoints_are_rejected_not_merged() {
    let plan = plan();
    let baseline = run_fleet_serial(&plan, &HashGrader);
    let dir = std::env::temp_dir()
        .join(format!("sbst-fleet-foreign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // Forge a checkpoint for shard 0 with the right fault slice but a
    // wrong config fingerprint and *lying* verdicts: if the fleet
    // trusted it, shard 0 would diverge from the baseline.
    let shard0_faults = plan.shard_fault_list(&plan.shards[0]);
    let wrong_config = 0x1234_5678_9abc_def0;
    let mut forged = Checkpoint::with_config(&shard0_faults, wrong_config);
    for v in forged.verdicts.iter_mut() {
        *v = Some(Verdict::SimError);
    }
    assert_eq!(forged.fingerprint, fingerprint(&shard0_faults));
    forged.save(&shard_checkpoint_path(&dir, 0)).expect("forge checkpoint");

    let cfg = FleetConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        // A generous lease: under suite-wide load a short lease can
        // expire spuriously, and the stolen shard's retry would then
        // *legitimately* resume from its own checkpoint, breaking the
        // resumes == 0 assertion below.
        policy: LeasePolicy { lease_timeout: Duration::from_secs(60), ..LeasePolicy::fast(7) },
        ..FleetConfig::new(2, 7)
    };
    let report = run_fleet(&plan, &HashGrader, &cfg);
    assert_invariants(&report, &baseline, 7);
    assert!(report.is_complete());
    assert!(
        report.telemetry.checkpoints_rejected >= 1,
        "the forged checkpoint must be rejected, not trusted"
    );
    assert_eq!(report.telemetry.counters.resumes, 0, "nothing legitimate to resume");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard that fails every attempt exhausts its retry budget and is
/// quarantined with its cause; the rest of the fleet is unaffected.
#[test]
fn persistent_failure_quarantines_only_the_sick_shard() {
    let plan = plan();
    let baseline = run_fleet_serial(&plan, &HashGrader);
    let victim = 5;
    let mut chaos = WorkerChaos::off();
    for attempt in 1..=8 {
        chaos.forced.push(ForcedFailure {
            shard: victim,
            attempt,
            action: if attempt % 2 == 0 {
                ChaosAction::Corrupt
            } else {
                ChaosAction::Panic { after: 0 }
            },
        });
    }
    let cfg = FleetConfig {
        policy: LeasePolicy {
            max_retries: 3,
            // Generous: a spurious expiry would interleave a Timeout
            // into the forced panic/corrupt cadence and shift the
            // final quarantine cause asserted below.
            lease_timeout: Duration::from_secs(60),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            seed: 11,
        },
        chaos,
        ..FleetConfig::new(3, 11)
    };
    let report = run_fleet(&plan, &HashGrader, &cfg);
    assert_invariants(&report, &baseline, 11);
    assert_eq!(
        report.quarantined().len(),
        1,
        "exactly the victim is quarantined: {:?}",
        report.fates
    );
    let (shard, cause) = report.quarantined()[0];
    assert_eq!(shard, victim);
    // 4 attempts (budget 3 retries): panic, corrupt, panic, corrupt →
    // the final cause is the corruption that broke the budget.
    assert_eq!(cause, FailureKind::Corrupt);
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind.name() == "shard-quarantine"),
        "quarantine surfaced as a trace event"
    );
    assert_eq!(report.telemetry.counters.quarantined, 1);
}

/// The fleet service against the real simulator: a small heterogeneous
/// population grading genuine ICU faults through the warm-start
/// experiment grader, fleet run equal to serial run, everything
/// completed.
#[test]
fn real_experiment_fleet_matches_its_serial_run() {
    use sbst_campaign::fleet::ExperimentFleetGrader;
    use sbst_cpu::unit_fault_list;

    let ecus = EcuSpec::population(Unit::Icu);
    let faults: Vec<FaultList> = ecus
        .iter()
        .map(|e| unit_fault_list(e.config.kind, Unit::Icu).sample(37))
        .collect();
    assert!(faults.iter().all(|f| f.len() >= 4), "sampled lists stay non-trivial");
    let plan = FleetPlan::build(ecus, faults, 3);
    let grader = ExperimentFleetGrader::new(&plan).expect("assemble fleet graders");
    let baseline = run_fleet_serial(&plan, &grader);
    // Real (debug-build) simulations take far longer than the test
    // policy's millisecond leases: size the lease like a deployment
    // would, well above the worst-case shard grading time.
    let cfg = FleetConfig {
        policy: LeasePolicy {
            max_retries: 2,
            lease_timeout: Duration::from_secs(120),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
            seed: 23,
        },
        ..FleetConfig::new(3, 23)
    };
    let report = run_fleet(&plan, &grader, &cfg);
    assert_invariants(&report, &baseline, 23);
    assert!(report.is_complete());
    assert_eq!(report.telemetry.faults_graded, plan.total_faults() as u64);
}
