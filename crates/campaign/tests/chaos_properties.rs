//! The chaos layer's headline properties.
//!
//! 1. **Interference invariance** — for *any* injector program (and no
//!    SEU), the cache-wrapped execution-loop signature is bit-identical
//!    to the solo-run signature: the paper's determinism claim holds
//!    under adversarial bus traffic, not just under the paper's own
//!    scenarios.
//! 2. **Divergence control** — the same routine executed the legacy
//!    (unwrapped, uncached) way *does* move its signature under that
//!    traffic: the invariance above is earned by the wrapper, not an
//!    artifact of an insensitive routine.
//! 3. **Never silent** — with transient upsets enabled, the
//!    self-healing wrapper either produces the golden signature
//!    (clean or recovered) or escalates to quarantine. It never hands
//!    back a corrupted signature as trusted.

use std::sync::OnceLock;

use proptest::prelude::*;
use sbst_cpu::{CoreConfig, CoreKind};
use sbst_fault::FaultPlane;
use sbst_isa::Asm;
use sbst_mem::{ArbiterKind, InjectorProgram, SeuConfig};
use sbst_soc::{ChaosConfig, SocBuilder};
use sbst_stl::routines::ForwardingTest;
use sbst_stl::{
    cycle_budget_for, run_chaotic, run_self_healing, run_standalone, wrap_cached, CheckMode,
    HealAction, HealConfig, RoutineEnv, WrapConfig, RESULT_SIG_OFF,
};

const KIND: CoreKind = CoreKind::A;
const BASE: u32 = 0x1000;

struct Fixture {
    env: RoutineEnv,
    wrapped: Asm,
    unwrapped: Asm,
    budget_wrapped: u64,
    budget_unwrapped: u64,
    solo_wrapped: u32,
    solo_unwrapped: u32,
}

/// The counter-sensitive forwarding routine (signature folds stall
/// counters), wrapped and legacy, plus both solo baselines.
fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let routine = ForwardingTest::with_pcs(KIND);
        let env = RoutineEnv::for_core(KIND);
        let wrapped =
            wrap_cached(&routine, &env, &WrapConfig::default(), "chaosp").expect("wraps");
        let legacy_cfg = WrapConfig {
            iterations: 1,
            invalidate: false,
            icache_capacity: u32::MAX,
            ..WrapConfig::default()
        };
        let unwrapped = wrap_cached(&routine, &env, &legacy_cfg, "legacy").expect("wraps");
        let budget_wrapped = cycle_budget_for(&env, &wrapped);
        let budget_unwrapped = cycle_budget_for(&env, &unwrapped);
        let solo_wrapped = run_standalone(
            &wrapped, &env, KIND, true, BASE, FaultPlane::fault_free(), budget_wrapped,
        );
        assert!(solo_wrapped.outcome.is_clean());
        let solo_unwrapped = run_standalone(
            &unwrapped, &env, KIND, false, BASE, FaultPlane::fault_free(), budget_unwrapped,
        );
        assert!(solo_unwrapped.outcome.is_clean());
        Fixture {
            env,
            wrapped,
            unwrapped,
            budget_wrapped,
            budget_unwrapped,
            solo_wrapped: solo_wrapped.signature,
            solo_unwrapped: solo_unwrapped.signature,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Property 1: any injector program, zero SEU — the wrapped
    /// signature equals the solo signature, bit for bit.
    #[test]
    fn wrapped_signature_is_invariant_under_any_injector_program(seed in any::<u64>()) {
        let fx = fixture();
        let chaos = ChaosConfig::interference(InjectorProgram::from_seed(seed));
        let r = run_chaotic(
            &fx.wrapped, &fx.env, KIND, true, BASE, chaos, fx.budget_wrapped,
        );
        prop_assert!(r.outcome.is_clean(), "program {seed:#x} broke the run: {:?}", r.outcome);
        prop_assert_eq!(
            r.signature, fx.solo_wrapped,
            "program {:#x} leaked into the wrapped signature", seed
        );
    }

    /// Property 4 (certification): for *any* injector program and every
    /// arbiter, the wrapped signature stays bit-identical to the solo
    /// golden — and on the certifiable arbiters (round-robin, TDMA) the
    /// observed per-port grant wait never exceeds the analytical
    /// certificate from `BoundParams`. Fixed-priority runs with the
    /// core on the top of the chain (ascending), since a starved core
    /// would simply hang; its ports carry no finite certificate, so
    /// only the signature invariant applies there.
    #[test]
    fn signature_and_bound_hold_on_every_arbiter(seed in any::<u64>()) {
        let fx = fixture();
        let program = fx.wrapped.assemble(BASE).expect("assembles");
        let arbiters = [
            ArbiterKind::RoundRobin,
            ArbiterKind::tdma(),
            ArbiterKind::FixedPriority { ascending: true },
        ];
        for arbiter in arbiters {
            let chaos = ChaosConfig::interference(InjectorProgram::from_seed(seed));
            let mut soc = SocBuilder::new()
                .load(&program)
                .core(CoreConfig::cached(KIND, 0, BASE), 0)
                .arbiter(arbiter)
                .chaos(chaos)
                .build();
            // TDMA slices the bus three ways, so give the solo budget
            // generous contention headroom.
            let outcome = soc.run(fx.budget_wrapped * 12);
            prop_assert!(
                outcome.is_clean(),
                "program {seed:#x} broke the run on {}: {outcome:?}",
                arbiter.name()
            );
            let sig = soc.peek(fx.env.result_addr + RESULT_SIG_OFF as u32);
            prop_assert_eq!(
                sig, fx.solo_wrapped,
                "program {:#x} leaked into the signature on {}", seed, arbiter.name()
            );
            if !matches!(arbiter, ArbiterKind::FixedPriority { .. }) {
                let stats = soc.bus().stats();
                let params = soc.bus().bound_params();
                for (port, &observed) in stats.max_grant_wait.iter().enumerate() {
                    let bound = params.per_access_wcl(port);
                    prop_assert!(
                        bound.admits(observed),
                        "program {:#x}, {}: port {} waited {} > certified {}",
                        seed, arbiter.name(), port, observed, bound
                    );
                }
            }
        }
    }
}

/// Property 2: the unwrapped signature is *not* invariant — adversarial
/// traffic moves it for a large share of the very same programs.
#[test]
fn unwrapped_signature_diverges_under_interference() {
    let fx = fixture();
    let mut diverged = 0usize;
    const PROGRAMS: u64 = 100;
    for seed in 0..PROGRAMS {
        let chaos = ChaosConfig::interference(InjectorProgram::from_seed(seed));
        let r = run_chaotic(
            &fx.unwrapped, &fx.env, KIND, false, BASE, chaos, fx.budget_unwrapped,
        );
        assert!(r.outcome.is_clean(), "program {seed} broke the legacy run: {:?}", r.outcome);
        if r.signature != fx.solo_unwrapped {
            diverged += 1;
        }
    }
    assert!(
        diverged > 0,
        "no injector program moved the unwrapped signature — the control is broken"
    );
    // The saturating pattern specifically must perturb the counters.
    let r = run_chaotic(
        &fx.unwrapped,
        &fx.env,
        KIND,
        false,
        BASE,
        ChaosConfig::interference(InjectorProgram::saturate(1)),
        fx.budget_unwrapped,
    );
    assert_ne!(
        r.signature, fx.solo_unwrapped,
        "bus saturation must move the legacy signature"
    );
    println!("unwrapped divergence: {diverged}/{PROGRAMS} programs");
}

/// Property 3: with SEU enabled the healer recovers or escalates —
/// a trusted signature is always the golden one, and a quarantine never
/// carries a signature.
#[test]
fn seu_runs_are_never_silently_corrupt() {
    let fx = fixture();
    let mut disturbed = 0usize;
    let mut recovered = 0usize;
    let mut quarantined = 0usize;
    for seed in 0..30u64 {
        // Two regimes: a moderate rate (a couple of strikes per run)
        // where retries usually heal, and a saturating rate where every
        // attempt is struck and escalation is the only honest outcome.
        let rate = if seed < 15 { 1_000 } else { 8_000 };
        let chaos = ChaosConfig {
            injector: InjectorProgram::from_seed(seed),
            seu: SeuConfig::at_rate(seed ^ 0x5e0_dead, rate),
        };
        let heal = HealConfig {
            max_retries: 2,
            check: if seed % 2 == 0 {
                CheckMode::Golden(fx.solo_wrapped)
            } else {
                CheckMode::Vote
            },
        };
        let report = run_self_healing(&heal, |attempt| {
            run_chaotic(
                &fx.wrapped, &fx.env, KIND, true, BASE,
                chaos.for_attempt(attempt), fx.budget_wrapped,
            )
        });
        match report.action {
            HealAction::Clean => {}
            HealAction::Recovered { .. } => {
                disturbed += 1;
                recovered += 1;
            }
            HealAction::Quarantine { .. } => {
                disturbed += 1;
                quarantined += 1;
            }
        }
        // The invariant: a trusted signature is the golden signature.
        match report.signature {
            Some(sig) => assert_eq!(
                sig, fx.solo_wrapped,
                "seed {seed}: healer trusted a corrupted signature"
            ),
            None => assert!(
                report.quarantined(),
                "seed {seed}: no signature but no quarantine either"
            ),
        }
    }
    // A sweep where nothing was disturbed, nothing healed or nothing
    // escalated tests nothing — all three legs must have engaged.
    assert!(disturbed > 0, "no trial was disturbed — SEU plane inert");
    assert!(recovered > 0, "no trial recovered — the healing path never engaged");
    assert!(quarantined > 0, "no trial escalated — the quarantine path never engaged");
    println!("seu sweep: {disturbed}/30 disturbed, {recovered} recovered, {quarantined} quarantined");
}
