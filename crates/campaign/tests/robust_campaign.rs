//! Campaign robustness: panic isolation (one crashing fault simulation
//! must not abort the campaign) and checkpoint/resume (an interrupted
//! campaign finishes later with the identical result).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use sbst_campaign::{
    fingerprint, resume_campaign, resume_campaign_graded, run_campaign, run_campaign_graded,
    routines_for, Checkpoint, CheckpointConfig, CheckpointError, ExecStyle, Experiment,
    FaultGrader,
};
use sbst_cpu::{unit_fault_list, CoreKind};
use sbst_fault::{Element, FaultList, FaultSite, Polarity, Unit, Verdict};
use sbst_soc::Scenario;

/// A fast deterministic grader: verdict is a pure function of the site
/// (FNV over its debug rendering), optionally panicking on one index.
struct SyntheticGrader {
    sites: Vec<FaultSite>,
    panic_on: Option<usize>,
    calls: AtomicUsize,
}

impl SyntheticGrader {
    fn new(sites: &[FaultSite]) -> SyntheticGrader {
        SyntheticGrader { sites: sites.to_vec(), panic_on: None, calls: AtomicUsize::new(0) }
    }

    fn verdict_of(site: FaultSite) -> Verdict {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in format!("{site:?}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        match h % 5 {
            0 => Verdict::WrongSignature,
            1 => Verdict::TestFail,
            2 => Verdict::UnexpectedTrap,
            3 => Verdict::Hang,
            _ => Verdict::Undetected,
        }
    }
}

impl FaultGrader for SyntheticGrader {
    fn grade(&self, site: FaultSite) -> Verdict {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = self.panic_on {
            if self.sites[idx] == site {
                panic!("injected simulator defect at fault #{idx}");
            }
        }
        SyntheticGrader::verdict_of(site)
    }
}

fn synthetic_faults(n: u16) -> FaultList {
    (0..n)
        .map(|i| FaultSite {
            unit: Unit::Hdcu,
            instance: i,
            element: Element::StallLine { line: (i % 7) as u8 },
            polarity: if i % 2 == 0 { Polarity::StuckAt0 } else { Polarity::StuckAt1 },
        })
        .collect()
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("det-sbst-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn panicking_fault_is_recorded_and_the_rest_are_unaffected() {
    let faults = synthetic_faults(40);
    let clean = run_campaign_graded(&SyntheticGrader::new(faults.sites()), &faults, 4);

    let mut grader = SyntheticGrader::new(faults.sites());
    grader.panic_on = Some(17);
    let (result, records, errors) = run_campaign_graded(&grader, &faults, 4);

    // The campaign completed: every fault has a verdict.
    assert_eq!(result.total, faults.len());
    assert_eq!(result.sim_errors, 1);
    assert_eq!(records[17].1, Verdict::SimError);
    // The crash names the offending site with the panic message.
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].site, Some(faults.sites()[17]));
    assert_eq!(errors[0].index, 17);
    assert!(errors[0].message.contains("injected simulator defect"), "{}", errors[0].message);
    // Every other verdict is identical to the crash-free campaign.
    for (i, (site, verdict)) in records.iter().enumerate() {
        if i != 17 {
            assert_eq!((site, verdict), (&clean.1[i].0, &clean.1[i].1), "fault #{i}");
        }
    }
    // Coverage arithmetic treats the crashed sim as proven-nothing.
    assert_eq!(result.detected() + result.undetected + result.sim_errors, result.total);
}

#[test]
fn interrupted_campaign_resumes_to_the_identical_result() {
    let faults = synthetic_faults(60);
    let uninterrupted = run_campaign_graded(&SyntheticGrader::new(faults.sites()), &faults, 3);

    let path = scratch_path("resume.ckpt.json");
    let _ = std::fs::remove_file(&path);
    // Grade in slices of 17 — each invocation "dies" after max_new new
    // faults, exactly like a killed process whose last checkpoint held
    // that many verdicts.
    let mut invocations = 0;
    loop {
        invocations += 1;
        let grader = SyntheticGrader::new(faults.sites());
        let cfg = CheckpointConfig {
            every: 5,
            max_new: Some(17),
            ..CheckpointConfig::new(path.clone())
        };
        let outcome = resume_campaign_graded(&grader, &faults, 3, &cfg).expect("slice");
        assert!(outcome.newly_graded <= 17);
        // Resumption must *skip* already-graded sites, not re-simulate.
        assert_eq!(grader.calls.load(Ordering::Relaxed), outcome.newly_graded);
        if outcome.complete {
            assert_eq!(outcome.result, uninterrupted.0, "resumed != uninterrupted");
            assert_eq!(outcome.records, uninterrupted.1);
            break;
        }
        assert!(invocations < 20, "never converged");
    }
    assert_eq!(invocations, 60usize.div_ceil(17), "one invocation per slice");

    // A second full resume over the finished checkpoint re-simulates
    // nothing and reproduces the result again.
    let grader = SyntheticGrader::new(faults.sites());
    let cfg = CheckpointConfig::new(path.clone());
    let again = resume_campaign_graded(&grader, &faults, 3, &cfg).expect("noop resume");
    assert_eq!(grader.calls.load(Ordering::Relaxed), 0);
    assert_eq!(again.result, uninterrupted.0);
    let _ = std::fs::remove_file(&path);
}

/// The lock-contention fix's contract: `on_done` observers get slot
/// snapshots cloned under the publishing lock but run outside it, so a
/// heavily threaded campaign checkpointing after *every* verdict must
/// still leave only consistent states on disk — every mid-campaign
/// checkpoint holds correct verdicts for exactly the faults it claims,
/// and resuming from any of them converges to the identical result.
#[test]
fn every_mid_campaign_checkpoint_is_consistent_and_resumes_identically() {
    let faults = synthetic_faults(48);
    let reference = run_campaign_graded(&SyntheticGrader::new(faults.sites()), &faults, 3);

    let path = scratch_path("consistent.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let mut slices = 0;
    let mut graded = 0;
    loop {
        slices += 1;
        let grader = SyntheticGrader::new(faults.sites());
        // Many workers, a checkpoint per verdict, die every 7 faults:
        // maximal pressure on the publish/observe seam.
        let cfg =
            CheckpointConfig { every: 1, max_new: Some(7), ..CheckpointConfig::new(path.clone()) };
        let outcome = resume_campaign_graded(&grader, &faults, 8, &cfg).expect("slice");
        let on_disk = Checkpoint::load(&path).expect("mid-campaign checkpoint loads");
        assert_eq!(on_disk.fingerprint, fingerprint(&faults));
        // Consistency: whatever subset the checkpoint captured, each
        // recorded verdict is the right one for its site — no torn or
        // misattributed slots under concurrency.
        for (i, v) in on_disk.verdicts.iter().enumerate() {
            if let Some(v) = v {
                assert_eq!(*v, reference.1[i].1, "fault #{i} verdict corrupted");
            }
        }
        graded += outcome.newly_graded;
        assert_eq!(
            on_disk.completed(),
            graded,
            "the final checkpoint of a slice must capture every verdict \
             graded so far (the every=1 writer may not lose the last ones \
             to out-of-order snapshot delivery)"
        );
        if outcome.complete {
            assert_eq!(outcome.result, reference.0);
            assert_eq!(outcome.records, reference.1);
            break;
        }
        assert!(slices < 20, "never converged");
    }
    assert_eq!(slices, 48usize.div_ceil(7));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_for_a_different_fault_list_is_rejected() {
    let faults = synthetic_faults(10);
    let other = synthetic_faults(11);
    let path = scratch_path("mismatch.ckpt.json");
    Checkpoint::new(&other).save(&path).expect("save");
    let grader = SyntheticGrader::new(faults.sites());
    let err = resume_campaign_graded(&grader, &faults, 1, &CheckpointConfig::new(path.clone()))
        .expect_err("fingerprint mismatch");
    match err {
        CheckpointError::FingerprintMismatch { found, expected } => {
            assert_eq!(found, fingerprint(&other));
            assert_eq!(expected, fingerprint(&faults));
        }
        other => panic!("wrong error: {other}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_file_on_disk_tracks_progress() {
    let faults = synthetic_faults(12);
    let path = scratch_path("progress.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let grader = SyntheticGrader::new(faults.sites());
    let cfg =
        CheckpointConfig { every: 1, max_new: Some(5), ..CheckpointConfig::new(path.clone()) };
    let outcome = resume_campaign_graded(&grader, &faults, 1, &cfg).expect("slice");
    assert!(!outcome.complete);
    assert_eq!(outcome.newly_graded, 5);
    let on_disk = Checkpoint::load(&path).expect("loads");
    assert_eq!(on_disk.completed(), 5);
    assert_eq!(on_disk.fingerprint, fingerprint(&faults));
    assert!(!on_disk.is_complete());
    let _ = std::fs::remove_file(&path);
}

/// The production path: a real (sampled) experiment graded via
/// `resume_campaign` in one go matches `run_campaign` exactly.
#[test]
fn resumed_experiment_campaign_matches_direct_run() {
    let factory = routines_for(Unit::Icu);
    let exp = Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario::single_core(),
    )
    .expect("experiment");
    let golden = exp.golden();
    let faults = unit_fault_list(CoreKind::A, Unit::Icu).sample(60);
    let direct = run_campaign(&exp, &golden, &faults, 0);

    let path = scratch_path("experiment.ckpt.json");
    let _ = std::fs::remove_file(&path);
    let outcome = resume_campaign(&exp, &golden, &faults, 0, &CheckpointConfig::new(path.clone()))
        .expect("resumable campaign");
    assert!(outcome.complete);
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(outcome.result, direct);
    // The checkpoint on disk is stamped with the experiment's config.
    let on_disk = Checkpoint::load(&path).expect("loads");
    assert_eq!(on_disk.config, exp.config_fingerprint());
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint recorded under one SoC configuration must not resume a
/// campaign against another ECU variant: the same fault list graded on
/// a different core count / cache geometry produces differently-meaning
/// verdicts, so the resume is rejected with a clear error.
#[test]
fn checkpoint_for_a_different_soc_config_is_rejected() {
    let factory = routines_for(Unit::Icu);
    let single = Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario::single_core(),
    )
    .expect("single-core experiment");
    let triple = Experiment::assemble(
        &*factory,
        CoreKind::A,
        ExecStyle::CacheWrapped,
        &Scenario { active_cores: 3, ..Scenario::single_core() },
    )
    .expect("triple-core experiment");
    assert_ne!(single.config_fingerprint(), triple.config_fingerprint());

    // Stride 25 over the ~118-site collapsed ICU list keeps ~5 faults —
    // comfortably more than `max_new: 2`, so the first pass really is
    // partial (stride > list length would collapse to a single fault
    // and complete immediately).
    let faults = unit_fault_list(CoreKind::A, Unit::Icu).sample(25);
    assert!(faults.len() > 2, "need a partial first pass");
    let path = scratch_path("config-mismatch.ckpt.json");
    let _ = std::fs::remove_file(&path);

    // Record a (partial) checkpoint under the single-core config...
    let golden = single.golden();
    let cfg = CheckpointConfig { max_new: Some(2), ..CheckpointConfig::new(path.clone()) };
    let partial =
        resume_campaign(&single, &golden, &faults, 0, &cfg).expect("partial campaign");
    assert!(!partial.complete);

    // ...then try to finish it on the triple-core variant.
    let golden3 = triple.golden();
    let err = resume_campaign(&triple, &golden3, &faults, 0, &CheckpointConfig::new(path.clone()))
        .expect_err("config mismatch must be rejected");
    match err {
        CheckpointError::ConfigMismatch { found, expected } => {
            assert_eq!(found, single.config_fingerprint());
            assert_eq!(expected, triple.config_fingerprint());
        }
        other => panic!("wrong error: {other}"),
    }

    // The matching experiment still resumes fine.
    let finished = resume_campaign(&single, &golden, &faults, 0, &CheckpointConfig::new(path.clone()))
        .expect("matching config resumes");
    assert!(finished.complete);
    let _ = std::fs::remove_file(&path);
}
