//! Differential property tests: random programs *with control flow* must
//! leave identical architectural state in the pipelined SoC (any cache
//! configuration, any contention) and the single-cycle reference model.

use proptest::prelude::*;
use sbst_cpu::{CoreConfig, CoreKind, RefCpu, RefStop};
use sbst_isa::{AluOp, Asm, Reg};
use sbst_mem::{ArbiterKind, InjectorProgram, SRAM_BASE};
use sbst_soc::{ChaosConfig, SocBuilder};

const BASE: u32 = 0x400;

/// A little random-program generator: straight-line ALU blocks separated
/// by *bounded* countdown loops and forward skips, plus memory traffic.
/// Every generated program terminates by construction.
#[derive(Debug, Clone)]
enum Chunk {
    Alu(Vec<(u8, u8, u8, u8)>),
    /// Countdown loop over a small ALU body: (iterations, body).
    Loop(u8, Vec<(u8, u8, u8, u8)>),
    /// Conditional forward skip over a block: (cond selector, block).
    Skip(u8, Vec<(u8, u8, u8, u8)>),
    /// Store/load pair at a scratch offset.
    Mem(u8, u8),
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    prop::collection::vec((0u8..8, 1u8..14, 1u8..14, 1u8..14), 1..max)
}

fn arb_chunk() -> impl Strategy<Value = Chunk> {
    prop_oneof![
        arb_ops(12).prop_map(Chunk::Alu),
        (1u8..5, arb_ops(6)).prop_map(|(n, b)| Chunk::Loop(n, b)),
        (0u8..4, arb_ops(6)).prop_map(|(c, b)| Chunk::Skip(c, b)),
        (0u8..16, 1u8..14).prop_map(|(off, r)| Chunk::Mem(off, r)),
    ]
}

fn emit(chunks: &[Chunk], scratch: u32) -> Asm {
    let alu_ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Mul,
    ];
    let mut a = Asm::new();
    for i in 1..14 {
        a.li(Reg::from_index(i), (i as u32).wrapping_mul(0x2545_f491));
    }
    a.li(Reg::R15, scratch); // scratch base
    let emit_ops = |a: &mut Asm, ops: &[(u8, u8, u8, u8)]| {
        for &(op, rd, rs1, rs2) in ops {
            a.alu(
                alu_ops[op as usize % 8],
                Reg::from_index(rd as usize),
                Reg::from_index(rs1 as usize),
                Reg::from_index(rs2 as usize),
            );
        }
    };
    for (ci, chunk) in chunks.iter().enumerate() {
        match chunk {
            Chunk::Alu(ops) => emit_ops(&mut a, ops),
            Chunk::Loop(n, body) => {
                let label = format!("loop_{ci}");
                a.li(Reg::R14, *n as u32);
                a.label(&label);
                emit_ops(&mut a, body);
                a.subi(Reg::R14, Reg::R14, 1);
                a.bne(Reg::R14, Reg::R0, &label);
            }
            Chunk::Skip(c, body) => {
                let label = format!("skip_{ci}");
                // Data-dependent but deterministic skip.
                let (r1, r2) = (Reg::from_index(1 + (*c as usize % 4)), Reg::R13);
                match c % 4 {
                    0 => a.beq(r1, r2, &label),
                    1 => a.bne(r1, r2, &label),
                    2 => a.blt(r1, r2, &label),
                    _ => a.bge(r1, r2, &label),
                }
                emit_ops(&mut a, body);
                a.label(&label);
            }
            Chunk::Mem(off, r) => {
                let off = (*off as i16) * 4;
                a.sw(Reg::from_index(*r as usize), Reg::R15, off);
                a.lw(Reg::from_index(1 + (*r as usize % 6)), Reg::R15, off);
            }
        }
    }
    a.halt();
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-core differential sweep: every random cause-free program
    /// runs on **all three** pipelined cores (the seed suite only ever
    /// sampled A and C), solo and against an adversarial bus injector —
    /// the contended leg on the default round-robin bus, on a TDMA bus,
    /// and with direct-mapped caches — and must always leave the
    /// architectural state the single-cycle reference computes. 64 cases
    /// × 3 cores × 4 platforms ≥ the issue's 64-cases-per-core floor.
    #[test]
    fn every_core_matches_reference_solo_and_contended(
        chunks in prop::collection::vec(arb_chunk(), 1..6),
        cached in any::<bool>(),
        inj_seed in any::<u64>(),
    ) {
        let scratch = SRAM_BASE + 0x200;
        let asm = emit(&chunks, scratch);
        let program = asm.assemble(BASE).expect("assembles");
        for kind in CoreKind::ALL {
            let mut reference = RefCpu::new(kind, program.clone());
            prop_assert_eq!(reference.run(2_000_000), RefStop::Halted);
            let cfg = if cached {
                CoreConfig::cached(kind, 0, BASE)
            } else {
                CoreConfig::uncached(kind, 0, BASE)
            };
            let chaos = ChaosConfig::interference(InjectorProgram::from_seed(inj_seed));
            let platforms = [
                ("solo", cfg, ArbiterKind::RoundRobin, None),
                ("contended-rr", cfg, ArbiterKind::RoundRobin, Some(chaos)),
                ("contended-tdma", cfg, ArbiterKind::tdma(), Some(chaos)),
                (
                    "contended-direct",
                    CoreConfig::cached_direct(kind, 0, BASE),
                    ArbiterKind::RoundRobin,
                    Some(chaos),
                ),
            ];
            for (label, cfg, arbiter, chaos) in platforms {
                let mut builder =
                    SocBuilder::new().load(&program).core(cfg, 0).arbiter(arbiter);
                if let Some(chaos) = chaos {
                    builder = builder.chaos(chaos);
                }
                let mut soc = builder.build();
                prop_assert!(
                    soc.run(50_000_000).is_clean(),
                    "core {:?} did not halt (cached={}, platform={})",
                    kind, cached, label
                );
                for r in Reg::ALL {
                    prop_assert_eq!(
                        soc.core(0).reg(r), reference.reg(r),
                        "core {:?}: register {} differs (cached={}, platform={})",
                        kind, r, cached, label
                    );
                }
                for off in (0..64u32).step_by(4) {
                    let addr = scratch + off;
                    prop_assert_eq!(
                        soc.peek(addr), reference.mem_word(addr),
                        "core {:?}: memory {:#x} differs (cached={}, platform={})",
                        kind, addr, cached, label
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_control_flow_matches_reference(
        chunks in prop::collection::vec(arb_chunk(), 1..8),
        cached in any::<bool>(),
        kind in prop::sample::select(vec![CoreKind::A, CoreKind::C]),
    ) {
        let asm = emit(&chunks, SRAM_BASE + 0x200);
        let program = asm.assemble(BASE).expect("assembles");
        let mut reference = RefCpu::new(kind, program.clone());
        prop_assert_eq!(reference.run(2_000_000), RefStop::Halted);
        let cfg = if cached {
            CoreConfig::cached(kind, 0, BASE)
        } else {
            CoreConfig::uncached(kind, 0, BASE)
        };
        let mut soc = SocBuilder::new().load(&program).core(cfg, 0).build();
        prop_assert!(soc.run(50_000_000).is_clean(), "pipeline did not halt");
        for r in Reg::ALL {
            prop_assert_eq!(
                soc.core(0).reg(r), reference.reg(r),
                "register {} differs (cached={})", r, cached
            );
        }
        // Memory agrees too.
        for off in (0..64u32).step_by(4) {
            let addr = SRAM_BASE + 0x200 + off;
            prop_assert_eq!(soc.peek(addr), reference.mem_word(addr));
        }
    }

    #[test]
    fn contention_never_changes_architectural_results(
        chunks in prop::collection::vec(arb_chunk(), 1..5),
        delay in 0u32..16,
    ) {
        // The multi-core premise behind the whole paper: contention can
        // change *timing*, never *values*.
        let asm = emit(&chunks, SRAM_BASE + 0x200);
        let program = asm.assemble(BASE).expect("assembles");
        let solo = {
            let mut soc = SocBuilder::new()
                .load(&program)
                .core(CoreConfig::uncached(CoreKind::A, 0, BASE), 0)
                .build();
            prop_assert!(soc.run(50_000_000).is_clean());
            *soc.core(0).regs()
        };
        // Traffic uses its own scratch area: shared data would of course differ.
        let traffic = emit(&[Chunk::Loop(4, vec![(0, 1, 2, 3), (4, 2, 3, 1)])], SRAM_BASE + 0x1200);
        let mut soc = SocBuilder::new()
            .load(&program)
            .load(&traffic.assemble(0x40000).expect("assembles"))
            .core(CoreConfig::uncached(CoreKind::A, 0, BASE), 0)
            .core(CoreConfig::uncached(CoreKind::B, 1, 0x40000), delay)
            .build();
        prop_assert!(soc.run(50_000_000).is_clean());
        prop_assert_eq!(*soc.core(0).regs(), solo);
    }
}
