//! End-to-end pipeline tests: programs run through the full SoC
//! (fetch → issue → EX → MEM → WB with caches, bus and Flash) and their
//! architectural results are checked, including differentially against
//! the functional reference model.

use proptest::prelude::*;
use sbst_cpu::{CoreConfig, CoreKind, RefCpu, RefStop};
use sbst_isa::{AluOp, Asm, Csr, Reg};
use sbst_mem::SRAM_BASE;
use sbst_soc::{RunOutcome, Soc, SocBuilder};

const BASE: u32 = 0x100;

fn run_single(kind: CoreKind, cached: bool, asm: &Asm, max: u64) -> Soc {
    let program = asm.assemble(BASE).unwrap();
    let cfg = if cached {
        CoreConfig::cached(kind, 0, BASE)
    } else {
        CoreConfig::uncached(kind, 0, BASE)
    };
    let mut soc = SocBuilder::new().load(&program).core(cfg, 0).build();
    let outcome = soc.run(max);
    assert!(outcome.is_clean(), "program did not halt cleanly: {outcome:?}");
    soc
}

#[test]
fn arithmetic_and_halt() {
    let mut a = Asm::new();
    a.li(Reg::R1, 6);
    a.li(Reg::R2, 7);
    a.mul(Reg::R3, Reg::R1, Reg::R2);
    a.halt();
    for cached in [false, true] {
        let soc = run_single(CoreKind::A, cached, &a, 10_000);
        assert_eq!(soc.core(0).reg(Reg::R3), 42);
    }
}

#[test]
fn back_to_back_forwarding_ex_to_ex() {
    // The Figure 1 snippet: the second add must see the first one's
    // result through the EX/MEM path.
    let mut a = Asm::new();
    a.li(Reg::R1, 10);
    a.li(Reg::R2, 20);
    a.add(Reg::R7, Reg::R1, Reg::R2); // r7 = 30
    a.add(Reg::R8, Reg::R7, Reg::R1); // needs r7 immediately
    a.add(Reg::R9, Reg::R8, Reg::R7); // chains again
    a.halt();
    for kind in [CoreKind::A, CoreKind::C] {
        let soc = run_single(kind, true, &a, 10_000);
        assert_eq!(soc.core(0).reg(Reg::R8), 40);
        assert_eq!(soc.core(0).reg(Reg::R9), 70);
    }
}

#[test]
fn load_use_hazard_stalls_but_is_correct() {
    let mut a = Asm::new();
    a.li(Reg::R1, SRAM_BASE);
    a.li(Reg::R2, 123);
    a.sw(Reg::R2, Reg::R1, 0);
    a.lw(Reg::R3, Reg::R1, 0);
    a.add(Reg::R4, Reg::R3, Reg::R3); // load-use
    a.halt();
    let soc = run_single(CoreKind::A, true, &a, 10_000);
    assert_eq!(soc.core(0).reg(Reg::R4), 246);
    assert!(soc.core(0).counters().haz_stalls > 0, "load-use inserted a stall");
}

#[test]
fn branch_loop_sums() {
    let mut a = Asm::new();
    a.li(Reg::R1, 10); // counter
    a.li(Reg::R2, 0); // acc
    a.label("top");
    a.add(Reg::R2, Reg::R2, Reg::R1);
    a.subi(Reg::R1, Reg::R1, 1);
    a.bne(Reg::R1, Reg::R0, "top");
    a.halt();
    for cached in [false, true] {
        let soc = run_single(CoreKind::B, cached, &a, 100_000);
        assert_eq!(soc.core(0).reg(Reg::R2), 55);
    }
}

#[test]
fn call_and_return() {
    let mut a = Asm::new();
    a.li(Reg::R1, 5);
    a.call("double");
    a.call("double");
    a.halt();
    a.label("double");
    a.add(Reg::R1, Reg::R1, Reg::R1);
    a.ret();
    let soc = run_single(CoreKind::A, true, &a, 10_000);
    assert_eq!(soc.core(0).reg(Reg::R1), 20);
}

#[test]
fn dual_issue_reaches_superscalar_ipc() {
    // Warm-up pass loads the I$, then a measured straight-line run of
    // independent ops between two cycle-counter reads.
    let mut a = Asm::new();
    a.li(Reg::R20, 2);
    a.label("pass");
    a.csrr(Reg::R28, Csr::Cycles);
    a.align(8);
    for i in 0..200 {
        // Alternate destinations, no dependencies within a packet.
        a.addi(Reg::from_index(1 + (i % 4)), Reg::R10, i as i16);
    }
    a.csrr(Reg::R29, Csr::Cycles);
    a.subi(Reg::R20, Reg::R20, 1);
    a.bne(Reg::R20, Reg::R0, "pass");
    a.halt();
    let soc = run_single(CoreKind::A, true, &a, 100_000);
    let core = soc.core(0);
    let warm_cycles = core.reg(Reg::R29) - core.reg(Reg::R28);
    let ipc = 200.0 / warm_cycles as f64;
    assert!(
        ipc > 1.5,
        "dual issue should approach 2 IPC on the warm pass, got {ipc:.2} \
         ({warm_cycles} cycles for 200 instructions)"
    );
}

#[test]
fn intra_packet_dependency_splits_and_is_correct() {
    let mut a = Asm::new();
    a.li(Reg::R1, 3);
    a.align(8);
    a.add(Reg::R2, Reg::R1, Reg::R1); // packet slot 0
    a.add(Reg::R3, Reg::R2, Reg::R1); // slot 1 depends on slot 0 -> split
    a.halt();
    let soc = run_single(CoreKind::A, true, &a, 10_000);
    assert_eq!(soc.core(0).reg(Reg::R3), 9);
}

#[test]
fn store_load_roundtrip_uncached_and_cached() {
    let mut a = Asm::new();
    a.li(Reg::R1, SRAM_BASE + 0x100);
    a.li(Reg::R2, 0xdead_beef);
    a.sw(Reg::R2, Reg::R1, 0);
    a.lw(Reg::R3, Reg::R1, 0);
    a.halt();
    for cached in [false, true] {
        let soc = run_single(CoreKind::A, cached, &a, 100_000);
        assert_eq!(soc.core(0).reg(Reg::R3), 0xdead_beef);
        assert_eq!(soc.peek(SRAM_BASE + 0x100), 0xdead_beef, "write-through visible");
    }
}

#[test]
fn alu64_pairs_on_core_c() {
    let mut a = Asm::new();
    a.li(Reg::R2, 0xffff_ffff); // low half
    a.li(Reg::R3, 1); // high half => r2:r3 = 0x1_ffff_ffff
    a.li(Reg::R4, 1);
    a.li(Reg::R5, 0);
    a.alu64(AluOp::Add, Reg::R6, Reg::R2, Reg::R4);
    a.halt();
    let soc = run_single(CoreKind::C, true, &a, 10_000);
    assert_eq!(soc.core(0).reg(Reg::R6), 0, "low rolls over");
    assert_eq!(soc.core(0).reg(Reg::R7), 2, "carry into high");
}

#[test]
fn alu64_is_illegal_on_core_a_and_fatal_without_handler() {
    let mut a = Asm::new();
    a.alu64(AluOp::Add, Reg::R2, Reg::R4, Reg::R6);
    for _ in 0..40 {
        a.nop(); // keep the core busy across the recognition window
    }
    a.halt();
    let program = a.assemble(BASE).unwrap();
    let mut soc = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(CoreKind::A, 0, BASE), 0)
        .build();
    let outcome = soc.run(10_000);
    assert!(matches!(outcome, RunOutcome::FatalTrap { core: 0, .. }), "{outcome:?}");
}

#[test]
fn alu64_forwarding_chain_on_core_c() {
    let mut a = Asm::new();
    a.li(Reg::R2, 5);
    a.li(Reg::R3, 0);
    a.alu64(AluOp::Add, Reg::R4, Reg::R2, Reg::R2); // r4:r5 = 10
    a.alu64(AluOp::Add, Reg::R6, Reg::R4, Reg::R2); // forwarded 64-bit
    a.halt();
    let soc = run_single(CoreKind::C, true, &a, 10_000);
    assert_eq!(soc.core(0).reg(Reg::R6), 15);
}

#[test]
fn mixed_width_overlap_interlocks_on_core_c() {
    let mut a = Asm::new();
    a.li(Reg::R2, 7);
    a.li(Reg::R3, 1);
    a.alu64(AluOp::Add, Reg::R4, Reg::R2, Reg::R2); // writes r4 (14) and r5 (2)
    a.addi(Reg::R6, Reg::R5, 0); // reads the *high* half as 32-bit
    a.halt();
    let soc = run_single(CoreKind::C, true, &a, 10_000);
    assert_eq!(soc.core(0).reg(Reg::R6), 2, "interlock waited for retirement");
    assert!(soc.core(0).counters().haz_stalls > 0);
}

#[test]
fn imprecise_overflow_trap_with_handler() {
    let mut a = Asm::new();
    // Install the handler.
    a.li(Reg::R30, BASE); // handler label resolved below via scratch calc
    a.j("main");
    a.align(16);
    a.label("handler");
    a.csrr(Reg::R10, Csr::IcuCause);
    a.csrr(Reg::R11, Csr::IcuDepth);
    a.csrr(Reg::R12, Csr::Epc);
    a.li(Reg::R13, 0xf);
    a.csrw(Csr::IcuPending, Reg::R13);
    a.addi(Reg::R14, Reg::R14, 1); // trap counter
    a.mret();
    a.label("main");
    // Point TrapVec at the handler: compute its address.
    a.li(Reg::R1, BASE + 16); // handler sits at the 16-aligned slot
    a.csrw(Csr::TrapVec, Reg::R1);
    a.li(Reg::R2, 0x7fff_ffff);
    a.li(Reg::R3, 1);
    a.addv(Reg::R4, Reg::R2, Reg::R3); // overflow -> imprecise trap
    for _ in 0..40 {
        a.nop();
    }
    a.halt();
    let soc = run_single(CoreKind::A, true, &a, 100_000);
    let core = soc.core(0);
    assert_eq!(core.reg(Reg::R14), 1, "exactly one trap");
    assert_eq!(core.reg(Reg::R10), 0b01, "overflow cause bit (core A mapping)");
    assert_eq!(core.reg(Reg::R4), 0x8000_0000, "wrapped result still written");
}

#[test]
fn imprecision_depth_differs_between_cached_and_uncached() {
    let handler_asm = |_: ()| {
        let mut a = Asm::new();
        a.j("main");
        a.align(16);
        a.label("handler");
        a.csrr(Reg::R11, Csr::IcuDepth);
        a.li(Reg::R13, 0xf);
        a.csrw(Csr::IcuPending, Reg::R13);
        a.mret();
        a.label("main");
        a.li(Reg::R1, BASE + 16);
        a.csrw(Csr::TrapVec, Reg::R1);
        a.li(Reg::R2, 0x7fff_ffff);
        a.li(Reg::R3, 1);
        // Two passes, mirroring the wrapper's loading/execution loops:
        // the depth compared is the warm (second) trap's.
        a.li(Reg::R21, 2);
        a.label("pass");
        a.addv(Reg::R4, Reg::R2, Reg::R3);
        for _ in 0..40 {
            a.addi(Reg::R20, Reg::R20, 1);
        }
        a.subi(Reg::R21, Reg::R21, 1);
        a.bne(Reg::R21, Reg::R0, "pass");
        a.halt();
        a
    };
    let a = handler_asm(());
    let cached = run_single(CoreKind::A, true, &a, 100_000);
    let uncached = run_single(CoreKind::A, false, &a, 1_000_000);
    let d_cached = cached.core(0).csr_value(Csr::IcuDepth);
    let d_uncached = uncached.core(0).csr_value(Csr::IcuDepth);
    assert!(
        d_cached > d_uncached,
        "with caches more instructions slip past the faulting one \
         (cached {d_cached} vs uncached {d_uncached})"
    );
}

#[test]
fn amoswap_lock_between_two_cores() {
    // Each core increments a shared counter 50 times under a spinlock.
    let lock = SRAM_BASE;
    let counter = SRAM_BASE + 4;
    let build = |base: u32| {
        let mut a = Asm::new();
        a.li(Reg::R1, lock);
        a.li(Reg::R2, counter);
        a.li(Reg::R5, 50);
        a.label("loop");
        a.label("acquire");
        a.li(Reg::R3, 1);
        a.amoswap(Reg::R4, Reg::R3, Reg::R1);
        a.bne(Reg::R4, Reg::R0, "acquire");
        a.lw(Reg::R6, Reg::R2, 0);
        a.addi(Reg::R6, Reg::R6, 1);
        a.sw(Reg::R6, Reg::R2, 0);
        a.sw(Reg::R0, Reg::R1, 0); // release
        a.subi(Reg::R5, Reg::R5, 1);
        a.bne(Reg::R5, Reg::R0, "loop");
        a.halt();
        a.assemble(base).unwrap()
    };
    let soc = SocBuilder::new()
        .load(&build(0x1000))
        .load(&build(0x8000))
        .core(CoreConfig::cached(CoreKind::A, 0, 0x1000), 0)
        .core(CoreConfig::cached(CoreKind::B, 1, 0x8000), 3)
        .build();
    // NOTE: the shared counter line must not be cached by both cores (no
    // coherence protocol) — use uncached cores for the lock test instead.
    drop(soc);
    let mut soc = SocBuilder::new()
        .load(&build(0x1000))
        .load(&build(0x8000))
        .core(CoreConfig::uncached(CoreKind::A, 0, 0x1000), 0)
        .core(CoreConfig::uncached(CoreKind::B, 1, 0x8000), 3)
        .build();
    let outcome = soc.run(2_000_000);
    assert!(outcome.is_clean(), "{outcome:?}");
    assert_eq!(soc.peek(counter), 100, "no lost updates under the lock");
}

#[test]
fn csr_counters_progress() {
    let mut a = Asm::new();
    a.csrr(Reg::R1, Csr::Cycles);
    for _ in 0..20 {
        a.nop();
    }
    a.csrr(Reg::R2, Csr::Cycles);
    a.csrr(Reg::R3, Csr::CoreId);
    a.halt();
    let soc = run_single(CoreKind::A, true, &a, 10_000);
    let c = soc.core(0);
    assert!(c.reg(Reg::R2) > c.reg(Reg::R1));
    assert_eq!(c.reg(Reg::R3), 0);
}

#[test]
fn if_stalls_grow_with_active_cores() {
    // The Table I mechanism at unit scale: the same busy-loop program on
    // 1 vs 3 uncached cores; fetch stalls per core grow with contention.
    let build = |base: u32| {
        let mut a = Asm::new();
        a.li(Reg::R1, 300);
        a.label("top");
        a.addi(Reg::R2, Reg::R2, 1);
        a.subi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R0, "top");
        a.halt();
        a.assemble(base).unwrap()
    };
    let stalls = |n: usize| {
        let mut b = SocBuilder::new();
        for i in 0..n {
            b = b.load(&build(0x1000 + 0x1_0000 * i as u32));
        }
        for i in 0..n {
            let kind = CoreKind::ALL[i];
            b = b.core(CoreConfig::uncached(kind, i, 0x1000 + 0x1_0000 * i as u32), i as u32 * 3);
        }
        let mut soc = b.build();
        assert!(soc.run(10_000_000).is_clean());
        soc.core(0).counters().if_stalls
    };
    let s1 = stalls(1);
    let s3 = stalls(3);
    assert!(
        s3 as f64 > 1.5 * s1 as f64,
        "bus contention must inflate fetch stalls: 1 core {s1}, 3 cores {s3}"
    );
}

#[test]
fn icache_makes_the_loop_fast() {
    let build = || {
        let mut a = Asm::new();
        a.li(Reg::R1, 500);
        a.label("top");
        a.subi(Reg::R1, Reg::R1, 1);
        a.bne(Reg::R1, Reg::R0, "top");
        a.halt();
        a
    };
    let cached = run_single(CoreKind::A, true, &build(), 1_000_000);
    let uncached = run_single(CoreKind::A, false, &build(), 10_000_000);
    let (cc, uc) = (cached.core(0).counters().cycles, uncached.core(0).counters().cycles);
    assert!(
        (uc as f64) > 2.0 * cc as f64,
        "uncached {uc} should be far slower than cached {cc}"
    );
}

// ---------------------------------------------------------------------
// Differential testing against the functional reference model.
// ---------------------------------------------------------------------

fn arb_prog_ops() -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    // (op selector, rd, rs1, rs2) — registers r1..r15 to avoid r0 traps.
    prop::collection::vec((0u8..8, 1u8..16, 1u8..16, 1u8..16), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_straightline_matches_reference(ops in arb_prog_ops(), cached in any::<bool>()) {
        let mut a = Asm::new();
        // Seed registers deterministically.
        for i in 1..16 {
            a.li(Reg::from_index(i), (i as u32).wrapping_mul(0x9e37_79b9));
        }
        let alu_ops = [
            AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or,
            AluOp::Xor, AluOp::Sll, AluOp::Srl, AluOp::Mul,
        ];
        for &(op, rd, rs1, rs2) in &ops {
            a.alu(
                alu_ops[op as usize],
                Reg::from_index(rd as usize),
                Reg::from_index(rs1 as usize),
                Reg::from_index(rs2 as usize),
            );
        }
        a.halt();
        let program = a.assemble(BASE).unwrap();
        let mut reference = RefCpu::new(CoreKind::A, program.clone());
        prop_assert_eq!(reference.run(100_000), RefStop::Halted);
        let cfg = if cached {
            CoreConfig::cached(CoreKind::A, 0, BASE)
        } else {
            CoreConfig::uncached(CoreKind::A, 0, BASE)
        };
        let mut soc = SocBuilder::new().load(&program).core(cfg, 0).build();
        prop_assert!(soc.run(5_000_000).is_clean());
        for r in Reg::ALL {
            prop_assert_eq!(
                soc.core(0).reg(r),
                reference.reg(r),
                "register {} differs", r
            );
        }
    }
}
