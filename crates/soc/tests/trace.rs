//! Unit tests of the pipeline-trace diagram rendering.

use sbst_cpu::{CoreConfig, CoreKind};
use sbst_isa::{Asm, Reg};
use sbst_soc::{PipelineTrace, SocBuilder};

fn traced(asm: &Asm) -> (PipelineTrace, u32, u32) {
    let base = 0x400;
    let program = asm.assemble(base).unwrap();
    let end = program.end();
    let mut soc = SocBuilder::new()
        .load(&program)
        .core(CoreConfig::cached(CoreKind::A, 0, base), 0)
        .build();
    (PipelineTrace::capture(&mut soc, 0, 50_000), base, end)
}

#[test]
fn diagram_contains_every_instruction_and_stage_order_is_sane() {
    let mut a = Asm::new();
    a.li(Reg::R1, 3);
    a.add(Reg::R2, Reg::R1, Reg::R1);
    a.halt();
    let (trace, base, end) = traced(&a);
    let d = trace.diagram(base, end);
    assert!(d.contains("addi r1, r0, 3"), "{d}");
    assert!(d.contains("add r2, r1, r1"), "{d}");
    assert!(d.contains("halt"), "{d}");
    // Stage ordering: every row that shows all four stages shows them in
    // IS EX ME WB order.
    for line in d.lines().skip(1) {
        let (is, ex) = (line.find("IS"), line.find("EX"));
        let (me, wb) = (line.find("ME"), line.find("WB"));
        if let (Some(is), Some(ex), Some(me), Some(wb)) = (is, ex, me, wb) {
            assert!(is < ex && ex < me && me < wb, "stage order broken: {line}");
        }
    }
}

#[test]
fn diagram_window_filters_rows() {
    let mut a = Asm::new();
    a.nop();
    a.nop();
    a.halt();
    let (trace, base, _) = traced(&a);
    let only_first = trace.diagram(base, base + 4);
    assert_eq!(only_first.lines().count(), 2, "header + one row:\n{only_first}");
    let empty = trace.diagram(0xdead_0000, 0xdead_0010);
    assert_eq!(empty.lines().count(), 1, "header only");
}

#[test]
fn ex_cycle_lookup() {
    let mut a = Asm::new();
    a.nop();
    a.halt();
    let (trace, base, _) = traced(&a);
    assert!(trace.ex_cycle_of(base).is_some());
    assert_eq!(trace.ex_cycle_of(0xffff_0000), None);
    assert!(!trace.views().is_empty());
}
