//! The SoC: cores, shared bus, run loop.

use std::sync::Arc;

use sbst_cpu::{Core, CoreConfig};
use sbst_isa::Program;
use sbst_mem::{
    ArbiterKind, Bus, FlashCtl, FlashImage, FlashTiming, InjectorStats, SeuEvent, SeuScheduler,
    SeuTarget, Sram, TrafficInjector,
};

use sbst_obs::{BusObs, MetricsHub};

use crate::chaos::ChaosConfig;
use crate::obs::{collect, ObsConfig, SocObs};

/// Why [`Soc::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every active core halted cleanly after this many cycles.
    AllHalted {
        /// Total cycles simulated.
        cycles: u64,
    },
    /// A core recognised a trap with no handler installed.
    FatalTrap {
        /// Which core died.
        core: usize,
        /// Cycle at which simulation stopped.
        cycles: u64,
    },
    /// The cycle budget ran out (the in-field watchdog case).
    Watchdog {
        /// Cycle at which the watchdog bit (or the budget expired).
        cycles: u64,
    },
}

impl RunOutcome {
    /// Whether every core halted cleanly.
    pub fn is_clean(&self) -> bool {
        matches!(self, RunOutcome::AllHalted { .. })
    }
}

/// Builder for a [`Soc`].
///
/// # Example
///
/// ```
/// use sbst_cpu::{CoreConfig, CoreKind};
/// use sbst_isa::{Asm, Reg};
/// use sbst_soc::SocBuilder;
///
/// # fn main() -> Result<(), sbst_isa::AsmError> {
/// let mut a = Asm::new();
/// a.li(Reg::R1, 7);
/// a.halt();
/// let program = a.assemble(0x100)?;
///
/// let mut soc = SocBuilder::new()
///     .load(&program)
///     .core(CoreConfig::cached(CoreKind::A, 0, 0x100), 0)
///     .build();
/// let outcome = soc.run(10_000);
/// assert!(outcome.is_clean());
/// assert_eq!(soc.core(0).reg(Reg::R1), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SocBuilder {
    flash: FlashImage,
    timing: FlashTiming,
    sram_latency: u32,
    cores: Vec<(CoreConfig, u32)>,
    chaos: Option<ChaosConfig>,
    obs: Option<ObsConfig>,
    arbiter: ArbiterKind,
}

impl Default for SocBuilder {
    fn default() -> SocBuilder {
        SocBuilder {
            flash: FlashImage::default(),
            timing: FlashTiming::default(),
            sram_latency: 0,
            cores: Vec::new(),
            chaos: None,
            obs: None,
            arbiter: ArbiterKind::RoundRobin,
        }
    }
}

impl SocBuilder {
    /// Starts an empty SoC description (default Flash/SRAM timing,
    /// round-robin arbitration).
    pub fn new() -> SocBuilder {
        SocBuilder { sram_latency: 4, ..SocBuilder::default() }
    }

    /// Loads a program image into Flash.
    ///
    /// # Panics
    ///
    /// Panics on image overlap (see [`FlashImage::load`]).
    pub fn load(mut self, program: &Program) -> SocBuilder {
        self.flash.load(program);
        self
    }

    /// Overrides the Flash timing.
    pub fn flash_timing(mut self, timing: FlashTiming) -> SocBuilder {
        self.timing = timing;
        self
    }

    /// Adds a core that starts stepping after `start_delay` cycles (the
    /// phase-skew scenario axis: the paper notes stall counts vary with
    /// the initial SoC configuration).
    pub fn core(mut self, cfg: CoreConfig, start_delay: u32) -> SocBuilder {
        self.cores.push((cfg, start_delay));
        self
    }

    /// Attaches a chaos plane: an adversarial traffic injector as one
    /// extra bus master, plus a transient-upset (SEU) schedule.
    pub fn chaos(mut self, cfg: ChaosConfig) -> SocBuilder {
        self.chaos = Some(cfg);
        self
    }

    /// Selects the bus arbitration policy (round-robin when not called).
    /// The analytical interference bounds of
    /// [`sbst_mem::BoundParams`] are derived from this choice.
    pub fn arbiter(mut self, kind: ArbiterKind) -> SocBuilder {
        self.arbiter = kind;
        self
    }

    /// Attaches the observability layer: per-core trace events, bus
    /// grant-latency histograms and a [`MetricsHub`] at the end of the
    /// run (see [`Soc::metrics`]). Observation is strictly read-only —
    /// signatures, verdicts and cycle counts are bit-identical with or
    /// without it.
    pub fn observe(mut self, cfg: ObsConfig) -> SocBuilder {
        self.obs = Some(cfg);
        self
    }

    /// Builds the SoC around a fresh copy of the accumulated image.
    pub fn build(self) -> Soc {
        self.build_shared(self.flash.clone().freeze())
    }

    /// Builds the SoC around an explicitly shared image — fault-campaign
    /// runs construct thousands of SoCs over one frozen image.
    pub fn build_shared(&self, image: Arc<FlashImage>) -> Soc {
        assert!(!self.cores.is_empty(), "SoC needs at least one core");
        // The injector gets its own bus port after the cores' ports, so
        // core-port numbering (2i, 2i+1) is unchanged by chaos.
        let ports = 2 * self.cores.len() + usize::from(self.chaos.is_some());
        let bus = Bus::with_arbiter(
            FlashCtl::new(image, self.timing),
            Sram::new(self.sram_latency),
            ports,
            self.arbiter,
        );
        let cores = self
            .cores
            .iter()
            .map(|&(cfg, delay)| (Core::new(cfg), delay))
            .collect();
        let injector = self
            .chaos
            .map(|c| TrafficInjector::new(c.injector, ports - 1));
        let seu = self.chaos.map(|c| SeuScheduler::new(c.seu));
        let mut soc = Soc { cores, bus, cycle: 0, injector, seu, seu_log: Vec::new(), obs: None };
        if let Some(cfg) = self.obs {
            soc.attach_obs(cfg);
        }
        soc
    }

    /// Freezes the accumulated Flash image for sharing across builds.
    pub fn freeze_image(&self) -> Arc<FlashImage> {
        self.flash.clone().freeze()
    }
}

/// The simulated multi-core SoC: N cores, one shared bus, shared Flash
/// and SRAM.
#[derive(Debug, Clone)]
pub struct Soc {
    cores: Vec<(Core, u32)>,
    bus: Bus,
    cycle: u64,
    injector: Option<TrafficInjector>,
    seu: Option<SeuScheduler>,
    seu_log: Vec<SeuEvent>,
    obs: Option<Box<SocObs>>,
}

impl Soc {
    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Core `i`.
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i].0
    }

    /// Mutable core `i` (arming faults, loading TCMs).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i].0
    }

    /// The shared bus (statistics, SRAM access).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable bus access (peripheral setup from the harness).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Harness read of shared SRAM.
    pub fn peek(&self, addr: u32) -> u32 {
        self.bus.sram().peek(addr)
    }

    /// Harness write of shared SRAM.
    pub fn poke(&mut self, addr: u32, value: u32) {
        self.bus.sram_mut().poke(addr, value);
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Severs every copy-on-write page this SoC still shares with other
    /// clones (SRAM, per-core TCMs, caches) — making a clone behave like
    /// the pre-COW deep copy. Differential-test hook: a run on an
    /// unshared clone must be indistinguishable from one on a COW clone.
    pub fn unshare(&mut self) {
        self.bus.sram_mut().unshare();
        for (core, _) in &mut self.cores {
            core.unshare();
        }
    }

    /// Traffic-injector statistics, when a chaos plane is attached.
    pub fn injector_stats(&self) -> Option<InjectorStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// Every SEU strike rolled this run, landed or absorbed.
    pub fn seu_events(&self) -> &[SeuEvent] {
        &self.seu_log
    }

    /// Strikes that actually corrupted state (vs absorbed by an empty
    /// cache or idle bus).
    pub fn seu_landed(&self) -> usize {
        self.seu_log.iter().filter(|e| e.landed).count()
    }

    /// Advances the whole SoC by one clock cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        for (core, delay) in &mut self.cores {
            if cycle >= *delay as u64 {
                core.step(&mut self.bus);
            }
        }
        // The injector files its request after the cores so a core and
        // the injector contending for the same free bus resolve by port
        // order in the arbiter, not by stepping order.
        if let Some(inj) = &mut self.injector {
            inj.step(&mut self.bus, cycle);
        }
        self.bus.step();
        // Strikes land after the bus settles: a BusData strike corrupts
        // the response a master will consume on a *later* cycle.
        if let Some(seu) = &mut self.seu {
            let n = self.cores.len();
            if let Some(strike) = seu.roll(cycle, n) {
                let landed = match strike.target {
                    SeuTarget::ICache { core } => self.cores[core % n]
                        .0
                        .icache_mut()
                        .and_then(|c| c.flip_bit(strike.line_pick, strike.word_pick, strike.bit))
                        .is_some(),
                    SeuTarget::DCache { core } => self.cores[core % n]
                        .0
                        .dcache_mut()
                        .and_then(|c| c.flip_bit(strike.line_pick, strike.word_pick, strike.bit))
                        .is_some(),
                    SeuTarget::BusData => {
                        self.bus.corrupt_in_flight(strike.word_pick, strike.bit)
                    }
                };
                self.seu_log.push(SeuEvent { strike, landed });
            }
        }
        // Observe last, so the sample reflects the cycle that just
        // executed. The observer is taken out and put back to let it
        // read the whole SoC; it never mutates simulated state.
        if self.obs.is_some() {
            let cycle = self.cycle;
            let mut obs = self.obs.take().expect("checked");
            obs.observe(self, cycle);
            self.obs = Some(obs);
        }
        self.cycle += 1;
    }

    /// Attaches the observability layer to a built SoC (equivalent to
    /// [`SocBuilder::observe`]).
    pub fn attach_obs(&mut self, cfg: ObsConfig) {
        let prev = self.cores.iter().map(|(c, _)| c.obs_sample()).collect();
        self.obs = Some(Box::new(SocObs::new(cfg, prev)));
        self.bus.attach_obs(BusObs::new(self.bus.ports(), cfg.ring_capacity));
    }

    /// Whether the observability layer is attached.
    pub fn observed(&self) -> bool {
        self.obs.is_some()
    }

    /// Collects the run's metrics: final per-core and per-cache
    /// counters, per-port bus statistics with grant-latency histograms,
    /// and the merged trace-event window. `None` unless the
    /// observability layer was attached.
    pub fn metrics(&self) -> Option<MetricsHub> {
        let obs = self.obs.as_deref()?;
        let bus_obs = self.bus.obs()?;
        Some(collect(self, obs, bus_obs))
    }

    /// Whether every core has halted cleanly.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|(c, _)| c.halted())
    }

    /// Whether a chaos plane (adversarial traffic injector or SEU
    /// schedule) is attached. Campaign livelock detection refuses to
    /// short-circuit such SoCs: injector programs and SEU schedules are
    /// driven by the absolute cycle count, which state comparison
    /// deliberately excludes.
    pub fn has_chaos(&self) -> bool {
        self.injector.is_some() || self.seu.is_some()
    }

    /// Architectural-trajectory equality for livelock detection: all
    /// cores (see [`Core::loop_state_eq`]), their start delays, and the
    /// bus with every attached memory (see `Bus::state_eq`). Excluded:
    /// the absolute cycle count, statistics, the SEU log and the
    /// observability layer. Callers must additionally rule out
    /// cycle-driven behavior — a TDMA arbiter (grants depend on the
    /// absolute cycle) and chaos planes (see
    /// [`has_chaos`](Soc::has_chaos)) — before treating equal states as
    /// proof of a loop.
    pub fn loop_state_eq(&self, other: &Soc) -> bool {
        self.cores.len() == other.cores.len()
            && self
                .cores
                .iter()
                .zip(&other.cores)
                .all(|((a, da), (b, db))| da == db && a.loop_state_eq(b))
            && self.bus.state_eq(&other.bus)
    }

    /// Runs until every core halts, a fatal trap occurs, the
    /// memory-mapped watchdog bites (when software armed it), or
    /// `max_cycles` elapse (the harness backstop). Both watchdog paths
    /// report [`RunOutcome::Watchdog`] — in field they are the same
    /// alarm.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        for _ in 0..max_cycles {
            self.step();
            if let Some(core) =
                self.cores.iter().position(|(c, _)| c.fatal_trap())
            {
                return RunOutcome::FatalTrap { core, cycles: self.cycle };
            }
            if self.all_halted() {
                return RunOutcome::AllHalted { cycles: self.cycle };
            }
            if self.bus.watchdog().bitten() {
                return RunOutcome::Watchdog { cycles: self.cycle };
            }
        }
        RunOutcome::Watchdog { cycles: self.cycle }
    }
}
