//! The SoC: cores, shared bus, run loop.

use std::sync::Arc;

use sbst_cpu::{Core, CoreConfig};
use sbst_isa::Program;
use sbst_mem::{Bus, FlashCtl, FlashImage, FlashTiming, Sram};

/// Why [`Soc::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every active core halted cleanly after this many cycles.
    AllHalted {
        /// Total cycles simulated.
        cycles: u64,
    },
    /// A core recognised a trap with no handler installed.
    FatalTrap {
        /// Which core died.
        core: usize,
        /// Cycle at which simulation stopped.
        cycles: u64,
    },
    /// The cycle budget ran out (the in-field watchdog case).
    Watchdog {
        /// Cycle at which the watchdog bit (or the budget expired).
        cycles: u64,
    },
}

impl RunOutcome {
    /// Whether every core halted cleanly.
    pub fn is_clean(&self) -> bool {
        matches!(self, RunOutcome::AllHalted { .. })
    }
}

/// Builder for a [`Soc`].
///
/// # Example
///
/// ```
/// use sbst_cpu::{CoreConfig, CoreKind};
/// use sbst_isa::{Asm, Reg};
/// use sbst_soc::SocBuilder;
///
/// # fn main() -> Result<(), sbst_isa::AsmError> {
/// let mut a = Asm::new();
/// a.li(Reg::R1, 7);
/// a.halt();
/// let program = a.assemble(0x100)?;
///
/// let mut soc = SocBuilder::new()
///     .load(&program)
///     .core(CoreConfig::cached(CoreKind::A, 0, 0x100), 0)
///     .build();
/// let outcome = soc.run(10_000);
/// assert!(outcome.is_clean());
/// assert_eq!(soc.core(0).reg(Reg::R1), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SocBuilder {
    flash: FlashImage,
    timing: FlashTiming,
    sram_latency: u32,
    cores: Vec<(CoreConfig, u32)>,
}

impl SocBuilder {
    /// Starts an empty SoC description (default Flash/SRAM timing).
    pub fn new() -> SocBuilder {
        SocBuilder { sram_latency: 4, ..SocBuilder::default() }
    }

    /// Loads a program image into Flash.
    ///
    /// # Panics
    ///
    /// Panics on image overlap (see [`FlashImage::load`]).
    pub fn load(mut self, program: &Program) -> SocBuilder {
        self.flash.load(program);
        self
    }

    /// Overrides the Flash timing.
    pub fn flash_timing(mut self, timing: FlashTiming) -> SocBuilder {
        self.timing = timing;
        self
    }

    /// Adds a core that starts stepping after `start_delay` cycles (the
    /// phase-skew scenario axis: the paper notes stall counts vary with
    /// the initial SoC configuration).
    pub fn core(mut self, cfg: CoreConfig, start_delay: u32) -> SocBuilder {
        self.cores.push((cfg, start_delay));
        self
    }

    /// Builds the SoC around a fresh copy of the accumulated image.
    pub fn build(self) -> Soc {
        self.build_shared(self.flash.clone().freeze())
    }

    /// Builds the SoC around an explicitly shared image — fault-campaign
    /// runs construct thousands of SoCs over one frozen image.
    pub fn build_shared(&self, image: Arc<FlashImage>) -> Soc {
        assert!(!self.cores.is_empty(), "SoC needs at least one core");
        let ports = 2 * self.cores.len();
        let bus = Bus::new(
            FlashCtl::new(image, self.timing),
            Sram::new(self.sram_latency),
            ports,
        );
        let cores = self
            .cores
            .iter()
            .map(|&(cfg, delay)| (Core::new(cfg), delay))
            .collect();
        Soc { cores, bus, cycle: 0 }
    }

    /// Freezes the accumulated Flash image for sharing across builds.
    pub fn freeze_image(&self) -> Arc<FlashImage> {
        self.flash.clone().freeze()
    }
}

/// The simulated multi-core SoC: N cores, one shared bus, shared Flash
/// and SRAM.
#[derive(Debug, Clone)]
pub struct Soc {
    cores: Vec<(Core, u32)>,
    bus: Bus,
    cycle: u64,
}

impl Soc {
    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Core `i`.
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i].0
    }

    /// Mutable core `i` (arming faults, loading TCMs).
    pub fn core_mut(&mut self, i: usize) -> &mut Core {
        &mut self.cores[i].0
    }

    /// The shared bus (statistics, SRAM access).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable bus access (peripheral setup from the harness).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Harness read of shared SRAM.
    pub fn peek(&self, addr: u32) -> u32 {
        self.bus.sram().peek(addr)
    }

    /// Harness write of shared SRAM.
    pub fn poke(&mut self, addr: u32, value: u32) {
        self.bus.sram_mut().poke(addr, value);
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the whole SoC by one clock cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        for (core, delay) in &mut self.cores {
            if cycle >= *delay as u64 {
                core.step(&mut self.bus);
            }
        }
        self.bus.step();
        self.cycle += 1;
    }

    /// Whether every core has halted cleanly.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|(c, _)| c.halted())
    }

    /// Runs until every core halts, a fatal trap occurs, the
    /// memory-mapped watchdog bites (when software armed it), or
    /// `max_cycles` elapse (the harness backstop). Both watchdog paths
    /// report [`RunOutcome::Watchdog`] — in field they are the same
    /// alarm.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        for _ in 0..max_cycles {
            self.step();
            if let Some(core) =
                self.cores.iter().position(|(c, _)| c.fatal_trap())
            {
                return RunOutcome::FatalTrap { core, cycles: self.cycle };
            }
            if self.all_halted() {
                return RunOutcome::AllHalted { cycles: self.cycle };
            }
            if self.bus.watchdog().bitten() {
                return RunOutcome::Watchdog { cycles: self.cycle };
            }
        }
        RunOutcome::Watchdog { cycles: self.cycle }
    }
}
