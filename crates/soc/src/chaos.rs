//! The chaos plane of a run: adversarial bus traffic plus transient
//! upsets.
//!
//! A [`ChaosConfig`] attaches two orthogonal disturbances to a SoC:
//!
//! * an [`InjectorProgram`] for an extra SafeTI-style bus master that
//!   competes with the cores for the shared bus — pure *timing*
//!   interference, which the paper's cache-resident execution loop must
//!   shrug off bit-for-bit;
//! * a [`SeuConfig`] schedule of transient bit flips in cached lines or
//!   in-flight bus data — *data* corruption, which no amount of cache
//!   residency survives and the self-healing wrapper must detect and
//!   retry through.
//!
//! Both are deterministic in their seeds, so any chaotic run — clean,
//! recovered, or quarantined — replays exactly.

use sbst_mem::{InjectorProgram, SeuConfig};

/// Chaos plane for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Program for the adversarial bus master.
    pub injector: InjectorProgram,
    /// Transient-upset schedule.
    pub seu: SeuConfig,
}

impl ChaosConfig {
    /// No interference, no upsets — attaching this is equivalent to not
    /// attaching a chaos plane at all (minus one unused bus port).
    pub fn none() -> ChaosConfig {
        ChaosConfig { injector: InjectorProgram::idle(), seu: SeuConfig::off() }
    }

    /// Timing interference only: the injector runs, no bits flip. This
    /// is the regime where wrapped signatures must stay bit-identical.
    pub fn interference(injector: InjectorProgram) -> ChaosConfig {
        ChaosConfig { injector, seu: SeuConfig::off() }
    }

    /// Transient upsets only, over a quiet bus.
    pub fn transients(seu: SeuConfig) -> ChaosConfig {
        ChaosConfig { injector: InjectorProgram::idle(), seu }
    }

    /// Whether this configuration disturbs anything at all.
    pub fn is_noop(&self) -> bool {
        matches!(self.injector.pattern, sbst_mem::InjectorPattern::Idle) && !self.seu.enabled()
    }

    /// The same chaos re-seeded for retry `attempt`: the injector
    /// program replays unchanged (interference is environmental), but
    /// transients do not recur, so the SEU schedule is re-derived.
    pub fn for_attempt(&self, attempt: usize) -> ChaosConfig {
        ChaosConfig { injector: self.injector, seu: self.seu.for_attempt(attempt) }
    }
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_detection() {
        assert!(ChaosConfig::none().is_noop());
        assert!(!ChaosConfig::interference(InjectorProgram::saturate(1)).is_noop());
        assert!(!ChaosConfig::transients(SeuConfig::at_rate(1, 100)).is_noop());
    }

    #[test]
    fn retry_reseeds_seu_but_not_injector() {
        let c = ChaosConfig {
            injector: InjectorProgram::saturate(9),
            seu: SeuConfig::at_rate(5, 1000),
        };
        let r = c.for_attempt(2);
        assert_eq!(r.injector, c.injector);
        assert_ne!(r.seu.seed, c.seu.seed);
        assert_eq!(c.for_attempt(0), c);
    }
}
