//! Execution scenarios: the paper's experimental axes.
//!
//! Table II varies, per logic simulation: the number of active cores,
//! the position of the test code in Flash (low/mid/high addresses), the
//! code alignment (word / double-word / double double-word) and the
//! initial SoC configuration (modeled as per-core start-phase skew).

use sbst_mem::{Prng, FLASH_HIGH, FLASH_LOW, FLASH_MID};

/// Where the test program sits in Flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodePosition {
    /// Low Flash addresses.
    Low,
    /// Middle of the Flash array.
    Mid,
    /// High Flash addresses.
    High,
}

impl CodePosition {
    /// All positions.
    pub const ALL: [CodePosition; 3] = [CodePosition::Low, CodePosition::Mid, CodePosition::High];

    /// Base Flash address of this position.
    pub fn base(self) -> u32 {
        match self {
            CodePosition::Low => FLASH_LOW,
            CodePosition::Mid => FLASH_MID,
            CodePosition::High => FLASH_HIGH,
        }
    }
}

/// Code alignment option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alignment {
    /// Word aligned (4 bytes): program starts mid fetch-group.
    Word,
    /// Double-word aligned (8 bytes): on a fetch-group boundary.
    Double,
    /// Double double-word aligned (16 bytes): on a Flash-row boundary.
    Quad,
}

impl Alignment {
    /// All alignments.
    pub const ALL: [Alignment; 3] = [Alignment::Word, Alignment::Double, Alignment::Quad];

    /// Applies the alignment to a base address: the result is the
    /// smallest address `>= base` with the requested residue.
    pub fn apply(self, base: u32) -> u32 {
        match self {
            // 4 mod 8: the first packet is single-wide.
            Alignment::Word => (base & !7) + 4,
            Alignment::Double => (base + 7) & !7,
            Alignment::Quad => (base + 15) & !15,
        }
    }
}

/// One execution scenario of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Number of active cores (1..=3); cores `0..active_cores` run.
    pub active_cores: usize,
    /// Code position in Flash.
    pub position: CodePosition,
    /// Code alignment.
    pub alignment: Alignment,
    /// Seed for the per-core start-phase skew (the "initial SoC
    /// configuration" the paper says makes stall counts unpredictable).
    pub skew_seed: u64,
}

impl Scenario {
    /// The baseline single-core scenario.
    pub fn single_core() -> Scenario {
        Scenario {
            active_cores: 1,
            position: CodePosition::Low,
            alignment: Alignment::Double,
            skew_seed: 0,
        }
    }

    /// Base address for the program of `core`, spacing cores 64 KiB
    /// apart and applying the alignment option.
    pub fn code_base(&self, core: usize) -> u32 {
        self.alignment.apply(self.position.base() + (core as u32) * 0x1_0000)
    }

    /// Deterministic per-core start delays derived from `skew_seed`.
    pub fn start_delays(&self) -> [u32; 3] {
        let mut prng = Prng::new(self.skew_seed);
        let mut out = [0u32; 3];
        for (i, d) in out.iter_mut().enumerate() {
            let x = prng.next_u64();
            // Skews up to ~2 flash accesses shift the bus interleaving.
            *d = if i == 0 { 0 } else { (x % 23) as u32 };
        }
        out
    }

    /// The multi-core sweep of Table II: {2,3 active cores} x positions
    /// x alignments x `skews` phase seeds. The seed axis is outermost so
    /// that any evenly strided subsample still spans every axis.
    pub fn table2_sweep(skews: u64) -> Vec<Scenario> {
        let mut out = Vec::new();
        for skew_seed in 0..skews {
            for active_cores in [2usize, 3] {
                for position in CodePosition::ALL {
                    for alignment in Alignment::ALL {
                        out.push(Scenario { active_cores, position, alignment, skew_seed });
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}c/{:?}/{:?}/s{}",
            self.active_cores, self.position, self.alignment, self.skew_seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_residues() {
        assert_eq!(Alignment::Word.apply(0x400) % 8, 4);
        assert_eq!(Alignment::Double.apply(0x404) % 8, 0);
        assert_eq!(Alignment::Quad.apply(0x404) % 16, 0);
        assert!(Alignment::Quad.apply(0x400) >= 0x400);
    }

    #[test]
    fn sweep_size() {
        assert_eq!(Scenario::table2_sweep(2).len(), 2 * 3 * 3 * 2);
    }

    #[test]
    fn delays_are_deterministic_and_core0_starts_first() {
        let s = Scenario { skew_seed: 7, ..Scenario::single_core() };
        assert_eq!(s.start_delays(), s.start_delays());
        assert_eq!(s.start_delays()[0], 0);
        let t = Scenario { skew_seed: 8, ..s };
        assert_ne!(s.start_delays(), t.start_delays());
    }

    #[test]
    fn code_bases_do_not_collide_across_cores() {
        let s = Scenario { active_cores: 3, ..Scenario::single_core() };
        let bases: Vec<u32> = (0..3).map(|c| s.code_base(c)).collect();
        assert!(bases[1] - bases[0] >= 0x8000);
        assert!(bases[2] - bases[1] >= 0x8000);
    }
}
