//! Pipeline-occupancy tracing and ASCII diagrams (the paper's Figure 1).

use std::collections::BTreeMap;

use sbst_cpu::StageView;

/// Per-instruction diagram row: (first cycle seen, label, cycle → stage).
type DiagramRow = (u64, String, BTreeMap<u64, &'static str>);

use crate::Soc;

/// A per-cycle record of one core's pipeline occupancy.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    views: Vec<(u64, StageView)>,
}

impl PipelineTrace {
    /// Records core `core_idx`'s pipeline (advancing the whole SoC)
    /// until that core halts or `max_cycles` elapse.
    pub fn capture(soc: &mut Soc, core_idx: usize, max_cycles: u64) -> PipelineTrace {
        let mut views = Vec::new();
        for _ in 0..max_cycles {
            soc.step();
            views.push((soc.cycle(), soc.core(core_idx).stage_view()));
            if soc.core(core_idx).halted() {
                break;
            }
        }
        PipelineTrace { views }
    }

    /// Raw per-cycle views.
    pub fn views(&self) -> &[(u64, StageView)] {
        &self.views
    }

    /// Renders an instruction/cycle pipeline diagram like the paper's
    /// Figure 1: one row per instruction (by address), one column per
    /// cycle, cells `IS`/`EX`/`ME`/`WB`.
    ///
    /// Only instructions whose address falls in `[from, to)` are shown.
    pub fn diagram(&self, from: u32, to: u32) -> String {
        use std::fmt::Write as _;
        if self.views.is_empty() {
            return String::new();
        }
        let mut rows: BTreeMap<u32, DiagramRow> = BTreeMap::new();
        let note = |pc: u32,
                        instr: Option<sbst_isa::Instr>,
                        cycle: u64,
                        stage: &'static str,
                        rows: &mut BTreeMap<u32, DiagramRow>| {
            if pc < from || pc >= to {
                return;
            }
            let entry = rows.entry(pc).or_insert_with(|| {
                let label = instr
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| ".word".to_string());
                (cycle, label, BTreeMap::new())
            });
            entry.2.insert(cycle, stage);
        };
        for (cycle, view) in &self.views {
            for slot in view.ex.iter().flatten() {
                note(slot.pc, slot.instr, *cycle, "IS", &mut rows);
            }
            for slot in view.mem.iter().flatten() {
                note(slot.pc, slot.instr, *cycle, "EX", &mut rows);
            }
            for slot in view.wb.iter().flatten() {
                note(slot.pc, slot.instr, *cycle, "ME", &mut rows);
                // WB (commit) happens the following cycle.
                note(slot.pc, slot.instr, *cycle + 1, "WB", &mut rows);
            }
        }
        // Sort rows by first appearance (program order through the pipe).
        let mut ordered: Vec<(u32, DiagramRow)> = rows.into_iter().collect();
        ordered.sort_by_key(|(pc, (first, ..))| (*first, *pc));
        // Clip the column range to the cycles the shown rows occupy.
        let first_cycle = ordered
            .iter()
            .filter_map(|(_, (_, _, s))| s.keys().next().copied())
            .min()
            .unwrap_or(self.views[0].0);
        let last_cycle = ordered
            .iter()
            .filter_map(|(_, (_, _, s))| s.keys().next_back().copied())
            .max()
            .unwrap_or(first_cycle);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} | cycles {}..{}",
            "instruction", first_cycle, last_cycle
        );
        for (pc, (_, label, stages)) in &ordered {
            let _ = write!(out, "{pc:#08x} {label:<18} |");
            for cycle in first_cycle..=last_cycle {
                let cell = stages.get(&cycle).copied().unwrap_or("..");
                let _ = write!(out, " {cell}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Cycle at which an instruction (by address) was in EX, if ever.
    pub fn ex_cycle_of(&self, pc: u32) -> Option<u64> {
        for (cycle, view) in &self.views {
            if view.mem.iter().flatten().any(|s| s.pc == pc) {
                return Some(*cycle);
            }
        }
        None
    }
}
