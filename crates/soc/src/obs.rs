//! The SoC-level observer: per-cycle delta sampling of every core plus
//! collection of the final [`MetricsHub`].
//!
//! The observer is attached via [`SocBuilder::observe`] and stays a
//! strictly read-only passenger: each cycle it copies every core's
//! counters ([`sbst_cpu::Core::obs_sample`]), diffs them against the
//! previous cycle's copy, and turns the deltas into [`TraceEvent`]s in
//! a bounded ring. Disabled (the default), the whole layer is one
//! `Option` discriminant check per SoC step.
//!
//! [`SocBuilder::observe`]: crate::SocBuilder::observe

use sbst_mem::SeuTarget;
use sbst_obs::{
    BusMetrics, BusObs, CoreMetrics, CoreSample, EventRing, MetricsHub, PortMetrics, TraceEvent,
    TraceKind,
};

use crate::soc::Soc;

/// Configuration of the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Capacity of each event ring (core-side and bus-side); the rings
    /// keep the most recent window and count what they drop.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig { ring_capacity: 4096 }
    }
}

/// The core-side observer state carried by an observed [`Soc`].
#[derive(Debug, Clone)]
pub(crate) struct SocObs {
    ring: EventRing,
    prev: Vec<CoreSample>,
    watchdog_seen: bool,
    seu_seen: usize,
}

impl SocObs {
    /// An observer primed with the cores' current samples.
    pub(crate) fn new(cfg: ObsConfig, prev: Vec<CoreSample>) -> SocObs {
        SocObs { ring: EventRing::new(cfg.ring_capacity), prev, watchdog_seen: false, seu_seen: 0 }
    }

    /// Called at the end of every SoC step (before the cycle counter
    /// increments), with the cycle that just executed.
    pub(crate) fn observe(&mut self, soc: &Soc, cycle: u64) {
        for i in 0..soc.core_count() {
            let sample = soc.core(i).obs_sample();
            let prev = &self.prev[i];
            let issued = sample.counters.issued - prev.counters.issued;
            if issued > 0 {
                self.ring.push(TraceEvent {
                    cycle,
                    core: Some(i as u8),
                    kind: TraceKind::Fetch {
                        pc: sample.ex_pc.unwrap_or(sample.next_pc),
                        slots: issued.min(2) as u8,
                    },
                });
            }
            let misses = |c: &Option<sbst_obs::CacheCounters>| c.map_or(0, |s| s.misses());
            if misses(&sample.icache) > misses(&prev.icache) {
                self.ring.push(TraceEvent {
                    cycle,
                    core: Some(i as u8),
                    kind: TraceKind::ICacheMiss,
                });
            }
            if misses(&sample.dcache) > misses(&prev.dcache) {
                self.ring.push(TraceEvent {
                    cycle,
                    core: Some(i as u8),
                    kind: TraceKind::DCacheMiss,
                });
            }
            self.prev[i] = sample;
        }
        for event in &soc.seu_events()[self.seu_seen..] {
            let core = match event.strike.target {
                SeuTarget::ICache { core } | SeuTarget::DCache { core } => {
                    Some((core % soc.core_count()) as u8)
                }
                SeuTarget::BusData => None,
            };
            self.ring.push(TraceEvent {
                cycle,
                core,
                kind: TraceKind::SeuStrike { landed: event.landed },
            });
        }
        self.seu_seen = soc.seu_events().len();
        if !self.watchdog_seen && soc.bus().watchdog().bitten() {
            self.watchdog_seen = true;
            self.ring.push(TraceEvent { cycle, core: None, kind: TraceKind::WatchdogBite });
        }
    }

    /// The core-side event ring.
    pub(crate) fn ring(&self) -> &EventRing {
        &self.ring
    }
}

/// Builds the final hub from an observed SoC's pieces: per-core final
/// samples, bus statistics plus the bus observer's histograms, and the
/// two event rings merged in cycle order (stable, core events first
/// within a cycle).
pub(crate) fn collect(soc: &Soc, obs: &SocObs, bus_obs: &BusObs) -> MetricsHub {
    let cores = (0..soc.core_count())
        .map(|i| {
            let s = soc.core(i).obs_sample();
            CoreMetrics { counters: s.counters, icache: s.icache, dcache: s.dcache }
        })
        .collect();
    let stats = soc.bus().stats();
    let bounds = soc.bus().bound_params();
    let ports = (0..soc.bus().ports())
        .map(|p| PortMetrics {
            requests: bus_obs.requests()[p],
            grants: stats.grants[p],
            wait_cycles: stats.wait_cycles[p],
            max_grant_wait: stats.max_grant_wait[p],
            bound: Some(bounds.per_access_wcl(p)),
            wait_hist: bus_obs.wait_hist(p).clone(),
        })
        .collect();
    let mut events: Vec<TraceEvent> = obs.ring().to_vec();
    events.extend(bus_obs.ring().iter());
    events.sort_by_key(|e| e.cycle);
    MetricsHub {
        cycles: soc.cycle(),
        cores,
        bus: BusMetrics {
            transactions: stats.transactions,
            busy_cycles: stats.busy_cycles,
            ports,
        },
        events,
        dropped_events: obs.ring().dropped() + bus_obs.ring().dropped(),
        seu_strikes: soc.seu_events().len() as u64,
        seu_landed: soc.seu_landed() as u64,
        injector_requests: soc.injector_stats().map(|s| s.requests),
        fleet: None,
    }
}
