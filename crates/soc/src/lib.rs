#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sbst-soc — the triple-core automotive SoC model
//!
//! Assembles [`sbst_cpu::Core`]s around the shared [`sbst_mem::Bus`] into
//! the SoC the paper evaluates: three cores (A, B: 32-bit; C: 64-bit
//! extended), each with private 8 KiB I$ / 4 KiB D$ and I/D TCMs, sharing
//! one bus to Flash and SRAM.
//!
//! * [`SocBuilder`] / [`Soc`] — construction and the cycle-stepped run
//!   loop with watchdog;
//! * [`Scenario`] — the experimental axes of the paper's sweeps (active
//!   cores, code position, alignment, phase skew);
//! * [`PipelineTrace`] — pipeline-occupancy capture and the ASCII
//!   instruction/cycle diagrams of Figure 1;
//! * [`ChaosConfig`] — the optional chaos plane: an adversarial traffic
//!   injector on its own bus port plus a seeded transient-upset (SEU)
//!   schedule, both deterministic and replayable.

mod chaos;
mod obs;
mod scenario;
mod soc;
mod trace;

pub use chaos::ChaosConfig;
pub use obs::ObsConfig;
pub use scenario::{Alignment, CodePosition, Scenario};
pub use soc::{RunOutcome, Soc, SocBuilder};
pub use trace::PipelineTrace;
